#include "cluster/autotune.hpp"

#include <unordered_set>

namespace ctile {

AutotuneResult autotune_tile_size(const LoopNest& nest,
                                  const AutotuneRequest& request,
                                  const MachineModel& machine) {
  std::vector<i64> candidates = request.candidates;
  if (candidates.empty()) {
    for (i64 c : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
      if (request.chain_extent <= 0 || c <= request.chain_extent) {
        candidates.push_back(c);
      }
    }
  }
  AutotuneResult result;
  // Dedup before evaluating, keeping first-occurrence order: a repeated
  // factor is the same plan and the same score, so re-evaluating it
  // would only inflate the hit counters and the evaluated list.
  {
    std::unordered_set<i64> seen;
    std::size_t kept = 0;
    for (i64 factor : candidates) {
      if (seen.insert(factor).second) {
        candidates[kept++] = factor;
      } else {
        result.duplicates_removed += 1;
      }
    }
    candidates.resize(kept);
  }
  bool found = false;
  // Candidate lowerings run through the PlanCache: a factor already
  // lowered — by a previous query, a duplicate candidate, or an executor
  // — reuses its census/mapping/LDS/comm plan instead of rebuilding.
  PlanCache& cache =
      request.cache != nullptr ? *request.cache : global_plan_cache();
  LoweringKnobs knobs;
  knobs.force_m = request.force_m;
  knobs.census_from_box = true;  // the autotune census path (from_box)
  knobs.orig_lo = request.orig_lo;
  knobs.orig_hi = request.orig_hi;
  knobs.skew = request.skew;
  // Machine fields join the key: the scores derived from these plans
  // depend on the machine, so a plan id minted under one machine must
  // never collide with another's (ROADMAP item-3 follow-on).
  {
    MachineKeyFields mf;
    mf.sec_per_iter = machine.sec_per_iter;
    mf.latency = machine.latency;
    mf.bandwidth = machine.bandwidth;
    mf.per_byte_overhead = machine.per_byte_overhead;
    mf.per_message_overhead = machine.per_message_overhead;
    mf.bytes_per_value = machine.bytes_per_value;
    knobs.machine = mf;
  }
  for (i64 factor : candidates) {
    try {
      bool was_hit = false;
      std::shared_ptr<const CompiledPlan> plan =
          cache.parallel_plan(nest, request.tiling_for(factor), knobs,
                              &was_hit);
      if (was_hit) {
        result.cache_hits += 1;
      } else {
        result.cache_misses += 1;
      }
      SimResult sim = simulate_cluster(
          plan->tiled(), plan->mapping(), plan->lds(), plan->comm_plan(),
          plan->census(), machine, request.arity, request.schedule);
      result.evaluated.emplace_back(factor, sim);
      if (!found || sim.makespan < result.best.makespan) {
        result.best = sim;
        result.best_factor = factor;
        found = true;
      }
    } catch (const LegalityError& e) {
      // Candidate structurally invalid: skip, but leave a trace — the
      // caller can tell "lost to the incumbent" from "never ran".
      result.skipped.emplace_back(factor, e.what());
    }
  }
  if (!found) {
    throw Error("autotune_tile_size: no structurally valid candidate for " +
                nest.name);
  }
  return result;
}

}  // namespace ctile
