#include "cluster/autotune.hpp"

namespace ctile {

AutotuneResult autotune_tile_size(const LoopNest& nest,
                                  const AutotuneRequest& request,
                                  const MachineModel& machine) {
  std::vector<i64> candidates = request.candidates;
  if (candidates.empty()) {
    for (i64 c : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
      if (request.chain_extent <= 0 || c <= request.chain_extent) {
        candidates.push_back(c);
      }
    }
  }
  AutotuneResult result;
  bool found = false;
  for (i64 factor : candidates) {
    try {
      TiledNest tiled(nest, TilingTransform(request.tiling_for(factor)));
      TileCensus census = TileCensus::from_box(
          tiled, request.orig_lo, request.orig_hi, request.skew);
      Mapping mapping(tiled, request.force_m, &census);
      LdsLayout lds(tiled, mapping);
      CommPlan plan(tiled, mapping, lds);
      SimResult sim =
          simulate_cluster(tiled, mapping, lds, plan, census, machine,
                           request.arity, request.schedule);
      result.evaluated.emplace_back(factor, sim);
      if (!found || sim.makespan < result.best.makespan) {
        result.best = sim;
        result.best_factor = factor;
        found = true;
      }
    } catch (const LegalityError&) {
      continue;  // candidate structurally invalid: skip
    }
  }
  if (!found) {
    throw Error("autotune_tile_size: no structurally valid candidate for " +
                nest.name);
  }
  return result;
}

}  // namespace ctile
