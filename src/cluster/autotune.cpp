#include "cluster/autotune.hpp"

namespace ctile {

AutotuneResult autotune_tile_size(const LoopNest& nest,
                                  const AutotuneRequest& request,
                                  const MachineModel& machine) {
  std::vector<i64> candidates = request.candidates;
  if (candidates.empty()) {
    for (i64 c : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
      if (request.chain_extent <= 0 || c <= request.chain_extent) {
        candidates.push_back(c);
      }
    }
  }
  AutotuneResult result;
  bool found = false;
  // Candidate lowerings run through the PlanCache: a factor already
  // lowered — by a previous query, a duplicate candidate, or an executor
  // — reuses its census/mapping/LDS/comm plan instead of rebuilding.
  PlanCache& cache =
      request.cache != nullptr ? *request.cache : global_plan_cache();
  LoweringKnobs knobs;
  knobs.force_m = request.force_m;
  knobs.census_from_box = true;  // the autotune census path (from_box)
  knobs.orig_lo = request.orig_lo;
  knobs.orig_hi = request.orig_hi;
  knobs.skew = request.skew;
  for (i64 factor : candidates) {
    try {
      bool was_hit = false;
      std::shared_ptr<const CompiledPlan> plan =
          cache.parallel_plan(nest, request.tiling_for(factor), knobs,
                              &was_hit);
      if (was_hit) {
        result.cache_hits += 1;
      } else {
        result.cache_misses += 1;
      }
      SimResult sim = simulate_cluster(
          plan->tiled(), plan->mapping(), plan->lds(), plan->comm_plan(),
          plan->census(), machine, request.arity, request.schedule);
      result.evaluated.emplace_back(factor, sim);
      if (!found || sim.makespan < result.best.makespan) {
        result.best = sim;
        result.best_factor = factor;
        found = true;
      }
    } catch (const LegalityError&) {
      continue;  // candidate structurally invalid: skip
    }
  }
  if (!found) {
    throw Error("autotune_tile_size: no structurally valid candidate for " +
                nest.name);
  }
  return result;
}

}  // namespace ctile
