// Communication-lower-bound-guided tile-SHAPE autotuner (DESIGN.md §15,
// ROADMAP item 5).
//
// autotune_tile_size sweeps the chain factor of a FIXED H family; this
// module searches the shape itself.  Candidates are built from the
// tiling cone's surface (deps/tiling_cone.hpp cone_surface_directions —
// Hodzic-Shang: scheduling-optimal tile shapes take their rows from the
// cone surface): every linearly independent n-subset of surface
// directions, each subset tried with every member as the chain row
// (mapping dimension force_m), mesh rows scaled by request.mesh_scales
// and the chain row swept over request.chain_factors.  Rectangular or
// hand-written baselines ride along via request.extra.
//
// The search is parallel and bound-pruned:
//
//   worker(candidate):
//     score := memo[plan key]                  (cross-search score memo)
//     bound := comm_lower_bound(...)           (exact, census-free, cheap)
//     if bound.time_lb_s > incumbent: PRUNE    (sound: the candidate's
//                                               true makespan >= bound >
//                                               incumbent >= final best,
//                                               so no pruned candidate
//                                               can be the winner and
//                                               the winner is identical
//                                               for any thread count /
//                                               prune timing)
//     plan  := PlanCache (shared, single-flight)
//     score := DES makespan (event-backend fibers, virtual clock) and/or
//              the analytic simulate_cluster model
//     incumbent := min(incumbent, score)
//
// Candidates are deduplicated BEFORE evaluation by their canonical plan
// key (machine fields included — satellite of ROADMAP item 3), so two
// surface subsets that normalize to the same H are lowered and scored
// once.  The final winner is reduced serially over the per-candidate
// slots: smallest score, ties to the smallest enumeration index —
// bitwise-deterministic across thread counts, seeds and prune settings.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/autotune.hpp"
#include "cluster/comm_bound.hpp"

namespace ctile {

/// How a candidate is scored.  Both evaluators are deterministic; the
/// analytic SimResult is recorded for every survivor regardless (it
/// carries the measured comm volume the bound is compared against).
enum class ShapeScorer {
  kEventDes,   ///< mpisim event-backend fiber DES (virtual clock); the
               ///< score is its makespan.  Scheduler seed must not and
               ///< does not affect the score (asserted in the bench).
  kAnalytic,   ///< cluster/simulator's analytic DES only (no fibers —
               ///< the TSan-friendly evaluator).
};

struct ScoreMemo;

struct ShapeSearchRequest {
  int force_m = 0;  ///< chain row index = mapping dimension (>= 0)
  int arity = 1;
  /// Scales of the n-1 non-chain (mesh) rows, in row order: H row i =
  /// direction_i / scale.  Required for surface enumeration unless
  /// mesh_extent is set.
  VecI mesh_scales;
  /// When > 0, ignore mesh_scales and FIT each mesh row's scale per
  /// candidate: the smallest scale whose tile count along that row's
  /// direction (over the original box, through the skew) is <= this
  /// extent.  This pins every candidate to (approximately) the same
  /// processor mesh — the paper's methodology (fixed 4x4 mesh, chain
  /// factor swept) — so shapes compete on communication and pipeline
  /// efficiency rather than on how many processors their mesh happens
  /// to span.
  i64 mesh_extent = 0;
  /// Swept scales of the chain row (>= 1 each).  Required for surface
  /// enumeration.
  std::vector<i64> chain_factors;
  /// Extra candidate tilings evaluated alongside the surface set
  /// (rectangular baselines, hand-written families).
  std::vector<MatQ> extra;
  /// Enumerate cone-surface candidates (disable to score only `extra`).
  bool surface = true;
  /// Candidate budget after dedup; excess candidates are dropped from
  /// the tail of the (deterministic) enumeration and counted in
  /// ShapeSearchResult::truncated.  0 = $CTILE_SHAPE_BUDGET, else 512.
  int budget = 0;
  /// Evaluation parallelism (1 = serial in the caller).  0 =
  /// $CTILE_SHAPE_THREADS, else hardware concurrency.
  int threads = 0;
  bool prune = true;  ///< bound-based pruning (winner-invariant)
  ShapeScorer scorer = ShapeScorer::kEventDes;
  u64 seed = 1;  ///< event-backend interleaving seed
  CommSchedule schedule = CommSchedule::kBlocking;
  /// Pre-skew box + skew of the nest (fast census and the comm bound).
  VecI orig_lo;
  VecI orig_hi;
  MatI skew;
  /// Shared plan cache (nullptr = global_plan_cache()).
  PlanCache* cache = nullptr;
  /// Optional cross-search score memo (keyed by the machine-inclusive
  /// plan key, so scores measured under one machine are never reused
  /// for another).
  ScoreMemo* memo = nullptr;
};

enum class ShapeStatus { kEvaluated, kPruned, kInvalid };

/// One candidate's record in enumeration order.
struct ShapeScore {
  MatQ h;
  VecI chain_dir;        ///< primitive direction of the chain row
  i64 chain_factor = 0;  ///< chain-row scale (0 for `extra` candidates)
  std::string origin;    ///< "surface" or "extra"
  ShapeStatus status = ShapeStatus::kInvalid;
  std::string detail;    ///< invalid reason / "pruned"
  std::string plan_id;   ///< PlanKey digest hex
  CommBoundResult bound;
  SimResult analytic;    ///< measured volume + analytic makespan
  double des_makespan_s = 0.0;  ///< event-DES makespan (kEventDes only)
  double score_s = 0.0;  ///< the makespan the search ranked by
};

struct ShapeSearchResult {
  std::size_t best_index = 0;  ///< into scores; an evaluated entry
  std::vector<ShapeScore> scores;
  i64 candidates = 0;   ///< enumerated before dedup
  i64 duplicates = 0;   ///< removed by plan-key dedup
  i64 truncated = 0;    ///< dropped by the candidate budget
  i64 invalid = 0;      ///< rejected (singular, cone-illegal, unliftable)
  i64 pruned = 0;       ///< skipped by the bound (never lowered/scored)
  i64 evaluated = 0;    ///< lowered + scored
  i64 cache_hits = 0;   ///< PlanCache traffic of this search
  i64 cache_misses = 0;
  i64 memo_hits = 0;    ///< scores served from the cross-search memo
  double gen_s = 0.0;    ///< candidate enumeration + dedup
  double bound_s = 0.0;  ///< comm_lower_bound total (sum over workers)
  double eval_s = 0.0;   ///< lowering + scoring total (sum over workers)
  double total_s = 0.0;  ///< end-to-end wall time

  const ShapeScore& best() const { return scores[best_index]; }
  double prune_rate() const {
    const i64 live = pruned + evaluated;
    return live > 0 ? static_cast<double>(pruned) /
                          static_cast<double>(live)
                    : 0.0;
  }
};

/// Cross-search score memo (see ShapeSearchRequest::memo).  Thread-safe.
struct ScoreMemo {
  std::mutex mu;
  std::unordered_map<std::string, ShapeScore> map;  ///< key bytes -> score
};

/// Enumerate the surface candidates for `deps` under `request` (exposed
/// for tests and for ctile_pland's dry-run accounting).  Each entry is
/// (H, chain direction, chain factor) in the search's deterministic
/// enumeration order; no legality filtering beyond nonzero determinant.
struct SurfaceCandidate {
  MatQ h;
  VecI chain_dir;
  i64 chain_factor;
};
std::vector<SurfaceCandidate> surface_candidates(
    const MatI& deps, const ShapeSearchRequest& request);

/// Score one compiled plan with the event-backend fiber DES: the plan's
/// schedule (receive/compute/send per chain step, one aggregated
/// message per successor direction) is run as fiber-per-rank programs
/// against mpisim's virtual clock, with the MachineModel mapped onto
/// Comm::advance (CPU costs) and the mpisim latency model (wire).
/// Returns the virtual makespan in seconds.  Deterministic: independent
/// of the interleaving seed and of the calling thread.
double event_des_makespan(const CompiledPlan& plan,
                          const MachineModel& machine, int arity,
                          CommSchedule schedule, u64 seed);

/// Run the search.  Throws Error when no candidate survives evaluation.
ShapeSearchResult autotune_tile_shape(const LoopNest& nest,
                                      const ShapeSearchRequest& request,
                                      const MachineModel& machine);

}  // namespace ctile
