// Discrete-event simulation of the tiled data-parallel program on a
// cluster (the timing substitute for the paper's physical testbed; see
// DESIGN.md "Substitutions").
//
// The simulated program is exactly the executor's schedule: every
// processor runs its chain of tiles under the linear schedule; a tile
// starts when its processor is free AND all its inbound messages have
// arrived; computing costs points * sec_per_iter; each outbound message
// serializes on the sender's NIC (pack cost + bytes/bandwidth) and
// arrives latency later.  Tile dependencies always point to (t' < t) or
// (t' == t, lexicographically smaller pid), so one sweep in (t, pid)
// order is a valid event order — no retrograde messages exist.
//
// The per-tile iteration counts are exact (census over the iteration
// space), so boundary tiles cost what they actually compute.
#pragma once

#include <map>
#include <vector>

#include "cluster/machine.hpp"
#include "runtime/comm_plan.hpp"
#include "tiling/census.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {

/// One executed tile in the simulated schedule (for wavefront traces).
struct TileTrace {
  int rank;       ///< executing processor
  i64 t;          ///< chain position
  double start;   ///< when the tile's compute began (after receives)
  double end;     ///< when its sends finished (CPU free again)
};

struct SimResult {
  double makespan = 0.0;        ///< parallel completion time (seconds)
  double sequential = 0.0;      ///< total_points * sec_per_iter
  double speedup = 0.0;         ///< sequential / makespan
  i64 messages = 0;             ///< messages sent
  i64 bytes = 0;                ///< payload bytes sent
  i64 total_points = 0;         ///< iterations executed
  i64 tiles_executed = 0;       ///< nonempty-shadow tiles run
  double compute_busy = 0.0;    ///< sum of per-tile compute times
  std::vector<TileTrace> trace; ///< per-tile schedule, in event order
};

/// Communication scheduling policy.
///
/// kBlocking is the paper's scheme (\S3.2): a tile computes, then its
/// processor synchronously packs and sends each outbound message
/// (MPI_Send over TCP occupies the CPU for the transfer).
///
/// kOverlapped is the scheme of the authors' companion work [8]
/// (Goumas-Sotiropoulos-Koziris, IPDPS'01), listed as future work in
/// \S5: sends are initiated non-blocking (the CPU pays only the pack +
/// initiation cost) and a DMA-capable NIC drains the wire concurrently
/// with the next tile's computation, so the per-step cost approaches
/// max(compute, transfer) instead of compute + transfer.
enum class CommSchedule { kBlocking, kOverlapped };

/// Simulate the schedule; arity is the kernel arity (values per point,
/// scales message bytes).
SimResult simulate_cluster(const TiledNest& tiled, const Mapping& mapping,
                           const LdsLayout& lds, const CommPlan& plan,
                           const TileCensus& census,
                           const MachineModel& machine, int arity = 1,
                           CommSchedule schedule = CommSchedule::kBlocking);

/// Convenience wrapper: builds mapping/LDS/plan/census and simulates.
/// force_m as in ParallelExecutor.
SimResult simulate_tiled_program(
    const TiledNest& tiled, const MachineModel& machine, int arity = 1,
    int force_m = -1, CommSchedule schedule = CommSchedule::kBlocking);

}  // namespace ctile
