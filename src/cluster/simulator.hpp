// Discrete-event simulation of the tiled data-parallel program on a
// cluster (the timing substitute for the paper's physical testbed; see
// DESIGN.md "Substitutions").
//
// The simulated program is exactly the executor's schedule: every
// processor runs its chain of tiles under the linear schedule; a tile
// starts when its processor is free AND all its inbound messages have
// arrived; computing costs points * sec_per_iter; each outbound message
// serializes on the sender's NIC (pack cost + bytes/bandwidth) and
// arrives latency later.  Tile dependencies always point to (t' < t) or
// (t' == t, lexicographically smaller pid), so one sweep in (t, pid)
// order is a valid event order — no retrograde messages exist.
//
// The per-tile iteration counts are exact (census over the iteration
// space), so boundary tiles cost what they actually compute.
#pragma once

#include <map>
#include <vector>

#include "cluster/machine.hpp"
#include "runtime/comm_plan.hpp"
#include "tiling/census.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {

/// One executed tile in the simulated schedule (for wavefront traces).
struct TileTrace {
  int rank;       ///< executing processor
  i64 t;          ///< chain position
  double start;   ///< when the tile's compute began (after receives)
  double end;     ///< when its sends finished (CPU free again)
};

struct SimResult {
  double makespan = 0.0;        ///< parallel completion time (seconds)
  double sequential = 0.0;      ///< total_points * sec_per_iter
  double speedup = 0.0;         ///< sequential / makespan
  i64 messages = 0;             ///< messages sent
  i64 bytes = 0;                ///< payload bytes sent
  i64 total_points = 0;         ///< iterations executed
  i64 tiles_executed = 0;       ///< nonempty-shadow tiles run
  double compute_busy = 0.0;    ///< sum of per-tile compute times
  std::vector<TileTrace> trace; ///< per-tile schedule, in event order
};

/// Communication scheduling policy.
///
/// kBlocking is the paper's scheme (\S3.2): a tile computes, then its
/// processor synchronously packs and sends each outbound message
/// (MPI_Send over TCP occupies the CPU for the transfer).
///
/// kOverlapped is the scheme of the authors' companion work [8]
/// (Goumas-Sotiropoulos-Koziris, IPDPS'01), listed as future work in
/// \S5: sends are initiated non-blocking (the CPU pays only the pack +
/// initiation cost) and a DMA-capable NIC drains the wire concurrently
/// with the next tile's computation, so the per-step cost approaches
/// max(compute, transfer) instead of compute + transfer.
enum class CommSchedule { kBlocking, kOverlapped };

/// Wavefront pipeline phases of a simulated run, carved out of the tile
/// trace (the quantities the 4096-rank wavefront-drain study in
/// bench/wavefront_drain reports):
///
///   fill   — from t=0 until EVERY processor has started its first tile
///            (the skewed wavefront sweeping across the mesh),
///   drain  — from the FIRST processor retiring its last tile until the
///            makespan (the wavefront leaving the mesh),
///   steady — everything in between (all processors busy in pipeline).
///
/// fill + steady + drain == makespan exactly: the phase boundaries are
/// the all-started and first-retired instants, with steady collapsing
/// to zero (and drain starting at the fill boundary) when the mesh
/// never fully fills — more processors than pipeline parallelism.
struct DrainProfile {
  double fill = 0.0;
  double steady = 0.0;
  double drain = 0.0;
};

/// Carve a SimResult's trace into wavefront phases.  Requires a
/// nonempty trace (every simulate_cluster result carries one).
DrainProfile drain_profile(const SimResult& result);

/// Simulate the schedule; arity is the kernel arity (values per point,
/// scales message bytes).
SimResult simulate_cluster(const TiledNest& tiled, const Mapping& mapping,
                           const LdsLayout& lds, const CommPlan& plan,
                           const TileCensus& census,
                           const MachineModel& machine, int arity = 1,
                           CommSchedule schedule = CommSchedule::kBlocking);

/// Convenience wrapper: builds mapping/LDS/plan/census and simulates.
/// force_m as in ParallelExecutor.
SimResult simulate_tiled_program(
    const TiledNest& tiled, const MachineModel& machine, int arity = 1,
    int force_m = -1, CommSchedule schedule = CommSchedule::kBlocking);

}  // namespace ctile
