#include "tiling/ttis.hpp"

#include "linalg/int_matops.hpp"

namespace ctile {

TtisRegion full_ttis_region(const TilingTransform& t) {
  const int n = t.n();
  TtisRegion r;
  r.lo.assign(static_cast<std::size_t>(n), 0);
  r.hi.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) r.hi[static_cast<std::size_t>(k)] = t.v(k) - 1;
  return r;
}

bool for_each_lattice_point_until(
    const TilingTransform& t, const TtisRegion& region,
    const std::function<bool(const VecI&)>& fn) {
  const int n = t.n();
  CTILE_ASSERT(static_cast<int>(region.lo.size()) == n &&
               static_cast<int>(region.hi.size()) == n);
  const MatI& hnf = t.Hnf();
  VecI jp(static_cast<std::size_t>(n), 0);
  VecI y(static_cast<std::size_t>(n), 0);  // lattice coordinates

  std::function<bool(int)> walk = [&](int k) -> bool {
    const i64 ck = hnf(k, k);
    // Congruence base from the outer lattice coordinates.
    i128 base128 = 0;
    for (int l = 0; l < k; ++l) {
      base128 += static_cast<i128>(hnf(k, l)) * y[static_cast<std::size_t>(l)];
    }
    const i64 base = narrow_i64(base128);
    const i64 lo = region.lo[static_cast<std::size_t>(k)];
    const i64 hi = region.hi[static_cast<std::size_t>(k)];
    // First admissible value >= lo with jk === base (mod ck).
    const i64 start = add_ck(lo, mod_floor(base - lo, ck));
    for (i64 v = start; v <= hi; v += ck) {
      jp[static_cast<std::size_t>(k)] = v;
      y[static_cast<std::size_t>(k)] = (v - base) / ck;  // exact by congruence
      if (k == n - 1) {
        if (!fn(jp)) return false;
      } else {
        if (!walk(k + 1)) return false;
      }
    }
    return true;
  };
  return walk(0);
}

void for_each_lattice_point(const TilingTransform& t, const TtisRegion& region,
                            const std::function<void(const VecI&)>& fn) {
  for_each_lattice_point_until(t, region, [&](const VecI& jp) {
    fn(jp);
    return true;
  });
}

i64 count_lattice_points(const TilingTransform& t, const TtisRegion& region) {
  i64 n = 0;
  for_each_lattice_point(t, region, [&](const VecI&) { ++n; });
  return n;
}

std::vector<VecI> tis_points(const TilingTransform& t) {
  std::vector<VecI> out;
  const VecI origin(static_cast<std::size_t>(t.n()), 0);
  for_each_lattice_point(t, full_ttis_region(t), [&](const VecI& jp) {
    out.push_back(t.point_of(origin, jp));
  });
  return out;
}

std::vector<VecI> ttis_points(const TilingTransform& t) {
  std::vector<VecI> out;
  for_each_lattice_point(t, full_ttis_region(t),
                         [&](const VecI& jp) { out.push_back(jp); });
  return out;
}

}  // namespace ctile
