#include "tiling/ttis.hpp"

#include "linalg/int_matops.hpp"

namespace ctile {

TtisRegion full_ttis_region(const TilingTransform& t) {
  const int n = t.n();
  TtisRegion r;
  r.lo.assign(static_cast<std::size_t>(n), 0);
  r.hi.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) r.hi[static_cast<std::size_t>(k)] = t.v(k) - 1;
  return r;
}

bool for_each_lattice_point_until(
    const TilingTransform& t, const TtisRegion& region,
    const std::function<bool(const VecI&)>& fn) {
  const int n = t.n();
  CTILE_ASSERT(static_cast<int>(region.lo.size()) == n &&
               static_cast<int>(region.hi.size()) == n);
  const MatI& hnf = t.Hnf();
  VecI jp(static_cast<std::size_t>(n), 0);
  VecI y(static_cast<std::size_t>(n), 0);  // lattice coordinates

  std::function<bool(int)> walk = [&](int k) -> bool {
    const i64 ck = hnf(k, k);
    // Congruence base from the outer lattice coordinates.
    i128 base128 = 0;
    for (int l = 0; l < k; ++l) {
      base128 += static_cast<i128>(hnf(k, l)) * y[static_cast<std::size_t>(l)];
    }
    const i64 base = narrow_i64(base128);
    const i64 lo = region.lo[static_cast<std::size_t>(k)];
    const i64 hi = region.hi[static_cast<std::size_t>(k)];
    // First admissible value >= lo with jk === base (mod ck).
    const i64 start = add_ck(lo, mod_floor(sub_ck(base, lo), ck));
    for (i64 v = start; v <= hi; v = add_ck(v, ck)) {
      jp[static_cast<std::size_t>(k)] = v;
      y[static_cast<std::size_t>(k)] = sub_ck(v, base) / ck;  // exact by congruence
      if (k == n - 1) {
        if (!fn(jp)) return false;
      } else {
        if (!walk(k + 1)) return false;
      }
    }
    return true;
  };
  return walk(0);
}

void for_each_lattice_point(const TilingTransform& t, const TtisRegion& region,
                            const std::function<void(const VecI&)>& fn) {
  for_each_lattice_point_until(t, region, [&](const VecI& jp) {
    fn(jp);
    return true;
  });
}

i64 count_lattice_points(const TilingTransform& t, const TtisRegion& region) {
  i64 n = 0;
  for (TtisRowWalker row(t, region); row.valid(); row.next()) {
    n = add_ck(n, row.row_points());
  }
  return n;
}

TtisRowWalker::TtisRowWalker(const TilingTransform& t, TtisRegion region)
    : hnf_(&t.Hnf()),
      n_(t.n()),
      region_(std::move(region)),
      jp_(static_cast<std::size_t>(t.n()), 0),
      y_(static_cast<std::size_t>(t.n()), 0),
      cn_(t.stride(t.n() - 1)) {
  CTILE_ASSERT(static_cast<int>(region_.lo.size()) == n_ &&
               static_cast<int>(region_.hi.size()) == n_);
  const int fail = descend(0);
  if (fail == n_) {
    valid_ = true;
  } else {
    advance(fail - 1);
  }
}

void TtisRowWalker::next() {
  CTILE_ASSERT(valid_);
  advance(n_ - 2);
}

int TtisRowWalker::descend(int k) {
  for (int d = k; d < n_; ++d) {
    const i64 cd = (*hnf_)(d, d);
    // Congruence base from the outer lattice coordinates.
    i128 base128 = 0;
    for (int l = 0; l < d; ++l) {
      base128 += static_cast<i128>((*hnf_)(d, l)) * y_[static_cast<std::size_t>(l)];
    }
    const i64 base = narrow_i64(base128);
    const i64 lo = region_.lo[static_cast<std::size_t>(d)];
    const i64 start = add_ck(lo, mod_floor(sub_ck(base, lo), cd));
    if (start > region_.hi[static_cast<std::size_t>(d)]) return d;
    jp_[static_cast<std::size_t>(d)] = start;
    y_[static_cast<std::size_t>(d)] = sub_ck(start, base) / cd;  // exact by congruence
  }
  count_ = add_ck(sub_ck(region_.hi[static_cast<std::size_t>(n_ - 1)],
                         jp_[static_cast<std::size_t>(n_ - 1)]) / cn_,
                  1);
  return n_;
}

void TtisRowWalker::advance(int d) {
  // Mirrors the recursive walk: a dimension with no admissible value for
  // the current outer prefix (descend fails at `fail`) just makes its
  // parent advance, exactly like an empty inner loop.
  while (d >= 0) {
    const i64 cd = (*hnf_)(d, d);
    jp_[static_cast<std::size_t>(d)] =
        add_ck(jp_[static_cast<std::size_t>(d)], cd);
    if (jp_[static_cast<std::size_t>(d)] > region_.hi[static_cast<std::size_t>(d)]) {
      --d;
      continue;
    }
    ++y_[static_cast<std::size_t>(d)];
    const int fail = descend(d + 1);
    if (fail == n_) {
      valid_ = true;
      return;
    }
    d = fail - 1;
  }
  valid_ = false;
}

VecI row_point_step(const TilingTransform& t) {
  const int n = t.n();
  const VecI origin(static_cast<std::size_t>(n), 0);
  VecI ce(static_cast<std::size_t>(n), 0);
  ce[static_cast<std::size_t>(n - 1)] = t.stride(n - 1);
  return t.point_of(origin, ce);
}

std::vector<VecI> tis_points(const TilingTransform& t) {
  std::vector<VecI> out;
  const VecI origin(static_cast<std::size_t>(t.n()), 0);
  for_each_lattice_point(t, full_ttis_region(t), [&](const VecI& jp) {
    out.push_back(t.point_of(origin, jp));
  });
  return out;
}

std::vector<VecI> ttis_points(const TilingTransform& t) {
  std::vector<VecI> out;
  for_each_lattice_point(t, full_ttis_region(t),
                         [&](const VecI& jp) { out.push_back(jp); });
  return out;
}

}  // namespace ctile
