#include "tiling/interior.hpp"

#include "linalg/rat_matops.hpp"

namespace ctile {

TileClassifier::TileClassifier(const TiledNest& tiled,
                               const TileCensus* census) {
  const TilingTransform& tf = tiled.transform();
  const Polyhedron& space = tiled.nest().space;
  const MatI& deps = tiled.nest().deps;
  const int n = tf.n();
  const int q = deps.cols();

  // Probe offsets relative to P j^S: the parallelepiped corners P' x_c
  // (fullness, only needed without an exact census) and every corner
  // shifted by -d_l (predecessors in-space).
  const bool census_full =
      census != nullptr && tf.p_integral() && tf.strides_compatible();
  const i64 full_count = census_full ? tf.tile_size() : -1;
  std::vector<VecQ> probes;
  for (int mask = 0; mask < (1 << n); ++mask) {
    VecI xc(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1) xc[static_cast<std::size_t>(k)] = tf.v(k) - 1;
    }
    const VecQ corner = mul(tf.Pp(), xc);
    if (!census_full) probes.push_back(corner);
    for (int l = 0; l < q; ++l) {
      VecQ shifted = corner;
      for (int k = 0; k < n; ++k) {
        shifted[static_cast<std::size_t>(k)] =
            shifted[static_cast<std::size_t>(k)] - Rat(deps(k, l));
      }
      probes.push_back(std::move(shifted));
    }
  }

  const std::vector<IntRange> box = tiled.tile_space_box();
  i64 cells = 1;
  for (const IntRange& r : box) {
    CTILE_ASSERT(!r.empty());
    lo_.push_back(r.lo);
    ext_.push_back(r.count());
    cells = mul_ck(cells, r.count());
  }
  flags_.assign(static_cast<std::size_t>(cells), 0);

  VecI js = lo_;
  for (std::size_t cell = 0; cell < flags_.size(); ++cell) {
    bool ok = !census_full || census->count(js) == full_count;
    if (ok) {
      const VecQ base = mul(tf.P(), js);
      for (const VecQ& probe : probes) {
        if (!space.contains_rational(vec_add(base, probe))) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      flags_[cell] = 1;
      ++num_interior_;
    }
    // Odometer increment over the box.
    for (int k = n; k-- > 0;) {
      if (++js[static_cast<std::size_t>(k)] <
          lo_[static_cast<std::size_t>(k)] + ext_[static_cast<std::size_t>(k)]) {
        break;
      }
      js[static_cast<std::size_t>(k)] = lo_[static_cast<std::size_t>(k)];
    }
  }
}

bool TileClassifier::interior(const VecI& js) const {
  CTILE_ASSERT(js.size() == lo_.size());
  i64 idx = 0;
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    const i64 rel = js[k] - lo_[k];
    if (rel < 0 || rel >= ext_[k]) return false;
    idx = idx * ext_[k] + rel;
  }
  return flags_[static_cast<std::size_t>(idx)] != 0;
}

}  // namespace ctile
