#include "tiling/interior.hpp"

#include <algorithm>

#include "linalg/rat_matops.hpp"

namespace ctile {

BandSplit::BandSplit(const TilingTransform& tf,
                     const std::vector<TtisRegion>& band_regions) {
  const int n = tf.n();
  const std::size_t inner = static_cast<std::size_t>(n) - 1;
  for (TtisRowWalker row(tf, full_ttis_region(tf)); row.valid(); row.next()) {
    const VecI& jp = row.row_start();
    const i64 cnt = row.row_points();
    const i64 c = row.inner_stride();
    i64 split = cnt;
    for (const TtisRegion& region : band_regions) {
      bool active = true;
      for (std::size_t k = 0; k < inner; ++k) {
        if (jp[k] < region.lo[k] || jp[k] > region.hi[k]) {
          active = false;
          break;
        }
      }
      if (!active) continue;
      const i64 first =
          std::max<i64>(0, ceil_div(region.lo[inner] - jp[inner], c));
      if (first >= cnt) continue;
      // The suffix invariant the whole split rests on: a pack region
      // that touches a row covers it through the row's last point.
      CTILE_ASSERT_MSG(
          region.hi[inner] >= jp[inner] + (cnt - 1) * c,
          "pack region is not a row suffix; band split inapplicable");
      split = std::min(split, first);
    }
    split_.push_back(split);
    remainder_points_ = add_ck(remainder_points_, split);
    band_points_ = add_ck(band_points_, cnt - split);
  }
}

TileClassifier::TileClassifier(const TiledNest& tiled,
                               const TileCensus* census,
                               const std::vector<TtisRegion>* band_regions) {
  if (band_regions != nullptr) {
    band_points_ =
        BandSplit(tiled.transform(), *band_regions).band_points();
  }
  const TilingTransform& tf = tiled.transform();
  const Polyhedron& space = tiled.nest().space;
  const MatI& deps = tiled.nest().deps;
  const int n = tf.n();
  const int q = deps.cols();

  // Probe offsets relative to P j^S: the parallelepiped corners P' x_c
  // (fullness, only needed without an exact census) and every corner
  // shifted by -d_l (predecessors in-space).
  const bool census_full =
      census != nullptr && tf.p_integral() && tf.strides_compatible();
  const i64 full_count = census_full ? tf.tile_size() : -1;
  std::vector<VecQ> probes;
  for (int mask = 0; mask < (1 << n); ++mask) {
    VecI xc(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1) xc[static_cast<std::size_t>(k)] = tf.v(k) - 1;
    }
    const VecQ corner = mul(tf.Pp(), xc);
    if (!census_full) probes.push_back(corner);
    for (int l = 0; l < q; ++l) {
      VecQ shifted = corner;
      for (int k = 0; k < n; ++k) {
        shifted[static_cast<std::size_t>(k)] =
            shifted[static_cast<std::size_t>(k)] - Rat(deps(k, l));
      }
      probes.push_back(std::move(shifted));
    }
  }

  const std::vector<IntRange> box = tiled.tile_space_box();
  i64 cells = 1;
  for (const IntRange& r : box) {
    CTILE_ASSERT(!r.empty());
    lo_.push_back(r.lo);
    ext_.push_back(r.count());
    cells = mul_ck(cells, r.count());
  }
  flags_.assign(static_cast<std::size_t>(cells), 0);

  VecI js = lo_;
  for (std::size_t cell = 0; cell < flags_.size(); ++cell) {
    bool ok = !census_full || census->count(js) == full_count;
    if (ok) {
      const VecQ base = mul(tf.P(), js);
      for (const VecQ& probe : probes) {
        if (!space.contains_rational(vec_add(base, probe))) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      flags_[cell] = 1;
      ++num_interior_;
    }
    // Odometer increment over the box.
    for (int k = n; k-- > 0;) {
      if (++js[static_cast<std::size_t>(k)] <
          lo_[static_cast<std::size_t>(k)] + ext_[static_cast<std::size_t>(k)]) {
        break;
      }
      js[static_cast<std::size_t>(k)] = lo_[static_cast<std::size_t>(k)];
    }
  }
}

bool TileClassifier::interior(const VecI& js) const {
  CTILE_ASSERT(js.size() == lo_.size());
  i64 idx = 0;
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    const i64 rel = js[k] - lo_[k];
    if (rel < 0 || rel >= ext_[k]) return false;
    idx = idx * ext_[k] + rel;
  }
  return flags_[static_cast<std::size_t>(idx)] != 0;
}

}  // namespace ctile
