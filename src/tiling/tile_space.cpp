#include "tiling/tile_space.hpp"

#include <algorithm>
#include <set>

#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"

namespace ctile {

Polyhedron tile_link_polyhedron(const LoopNest& nest,
                                const TilingTransform& tf) {
  const int n = nest.depth;
  Polyhedron link(2 * n);  // variables: (j^S_1..j^S_n, j_1..j_n)
  // Original-space constraints on the j block.
  for (const Constraint& c : nest.space.constraints()) {
    Constraint lifted;
    lifted.coeffs.assign(static_cast<std::size_t>(2 * n), 0);
    for (int i = 0; i < n; ++i) {
      lifted.coeffs[static_cast<std::size_t>(n + i)] =
          c.coeffs[static_cast<std::size_t>(i)];
    }
    lifted.constant = c.constant;
    link.add(std::move(lifted));
  }
  // Tiling constraints: 0 <= (H' j)_k - v_k j^S_k <= v_k - 1.
  const MatI& hp = tf.Hp();
  for (int k = 0; k < n; ++k) {
    Constraint lo;  // (H'j)_k - v_k jS_k >= 0
    lo.coeffs.assign(static_cast<std::size_t>(2 * n), 0);
    lo.coeffs[static_cast<std::size_t>(k)] = neg_ck(tf.v(k));
    for (int i = 0; i < n; ++i) {
      lo.coeffs[static_cast<std::size_t>(n + i)] = hp(k, i);
    }
    lo.constant = 0;
    link.add(std::move(lo));

    Constraint hi;  // v_k jS_k + v_k - 1 - (H'j)_k >= 0
    hi.coeffs.assign(static_cast<std::size_t>(2 * n), 0);
    hi.coeffs[static_cast<std::size_t>(k)] = tf.v(k);
    for (int i = 0; i < n; ++i) {
      hi.coeffs[static_cast<std::size_t>(n + i)] = neg_ck(hp(k, i));
    }
    hi.constant = sub_ck(tf.v(k), 1);
    link.add(std::move(hi));
  }
  return link;
}

TiledNest::TiledNest(LoopNest nest, TilingTransform transform)
    : nest_(std::move(nest)), tf_(std::move(transform)) {
  nest_.validate();
  if (tf_.n() != nest_.depth) {
    throw LegalityError(nest_.name + ": tiling dimension " +
                        std::to_string(tf_.n()) + " != loop depth " +
                        std::to_string(nest_.depth));
  }
  require_tiling_legal(tf_.H(), nest_.deps, nest_.name);
  // Project the linking polyhedron onto the j^S block; FM produces many
  // redundant combinations, so simplify once (this is the polyhedron the
  // code generator turns into loop bounds and valid() tests).
  tile_space_ = tile_link_polyhedron(nest_, tf_)
                    .project_prefix(nest_.depth)
                    .simplified();
}

const MatI& TiledNest::tile_deps() const {
  if (tile_deps_) return *tile_deps_;
  const int n = nest_.depth;
  std::set<VecI> found;
  MatI dprime = ttis_deps();
  for (int d = 0; d < dprime.cols(); ++d) {
    VecI dp = dprime.col(d);
    // d' >= 0 is guaranteed by legality; d^S(j') = floor((j' + d') / V)
    // componentwise, which is nonzero only when some coordinate lies in
    // the boundary band j'_k >= v_k - d'_k.  Walk one band per dimension
    // (full TTIS if the dependence spans whole tiles) and collect the
    // distinct nonzero d^S values.
    auto collect = [&](const TtisRegion& region) {
      for_each_lattice_point(tf_, region, [&](const VecI& jp) {
        VecI ds(static_cast<std::size_t>(n));
        bool nonzero = false;
        for (int k = 0; k < n; ++k) {
          i64 q = floor_div(jp[static_cast<std::size_t>(k)] +
                                dp[static_cast<std::size_t>(k)],
                            tf_.v(k));
          ds[static_cast<std::size_t>(k)] = q;
          if (q != 0) nonzero = true;
        }
        if (nonzero) found.insert(ds);
      });
    };
    bool any_band = false;
    bool full_needed = false;
    for (int k = 0; k < n; ++k) {
      i64 dk = dp[static_cast<std::size_t>(k)];
      if (dk <= 0) continue;
      any_band = true;
      if (dk >= tf_.v(k)) {
        full_needed = true;
        break;
      }
    }
    if (!any_band) continue;  // dependence internal to every tile
    if (full_needed) {
      collect(full_ttis_region(tf_));
      continue;
    }
    for (int k = 0; k < n; ++k) {
      i64 dk = dp[static_cast<std::size_t>(k)];
      if (dk <= 0) continue;
      TtisRegion band = full_ttis_region(tf_);
      band.lo[static_cast<std::size_t>(k)] = tf_.v(k) - dk;
      collect(band);
    }
  }
  MatI out(n, static_cast<int>(found.size()));
  int c = 0;
  for (const VecI& ds : found) {
    for (int r = 0; r < n; ++r) out(r, c) = ds[static_cast<std::size_t>(r)];
    ++c;
  }
  tile_deps_ = std::move(out);
  return *tile_deps_;
}

MatI TiledNest::ttis_deps() const {
  MatI dprime = mul(tf_.Hp(), nest_.deps);
  for (int r = 0; r < dprime.rows(); ++r) {
    for (int c = 0; c < dprime.cols(); ++c) {
      CTILE_ASSERT_MSG(dprime(r, c) >= 0,
                       "ttis_deps: negative transformed dependence despite "
                       "legality check");
    }
  }
  return dprime;
}

namespace {

// The TTIS of tile js lives on the lattice H' Z^n *shifted* by -V js
// (the shift is a lattice vector exactly when P is integral, i.e. when
// all tiles are translates of the origin tile).  Walking the unshifted
// lattice over the region translated by +V js handles both cases: for a
// lattice point x there, j = P' x is integral and jp = x - V js are the
// TTIS coordinates.
TtisRegion shifted_region(const TilingTransform& tf, const VecI& js) {
  TtisRegion region = full_ttis_region(tf);
  for (int k = 0; k < tf.n(); ++k) {
    const i64 shift = mul_ck(tf.v(k), js[static_cast<std::size_t>(k)]);
    region.lo[static_cast<std::size_t>(k)] =
        add_ck(region.lo[static_cast<std::size_t>(k)], shift);
    region.hi[static_cast<std::size_t>(k)] =
        add_ck(region.hi[static_cast<std::size_t>(k)], shift);
  }
  return region;
}

VecI unshift(const TilingTransform& tf, const VecI& js, const VecI& x) {
  VecI jp(x.size());
  for (int k = 0; k < tf.n(); ++k) {
    jp[static_cast<std::size_t>(k)] =
        sub_ck(x[static_cast<std::size_t>(k)],
               mul_ck(tf.v(k), js[static_cast<std::size_t>(k)]));
  }
  return jp;
}

}  // namespace

void TiledNest::for_each_tile_point(
    const VecI& js,
    const std::function<void(const VecI& jp, const VecI& j)>& fn) const {
  const VecI origin(static_cast<std::size_t>(tf_.n()), 0);
  for_each_lattice_point(tf_, shifted_region(tf_, js), [&](const VecI& x) {
    VecI j = tf_.point_of(origin, x);  // P' x, integral for lattice x
    if (nest_.space.contains(j)) fn(unshift(tf_, js, x), j);
  });
}

bool TiledNest::tile_nonempty(const VecI& js) const {
  const VecI origin(static_cast<std::size_t>(tf_.n()), 0);
  bool completed = for_each_lattice_point_until(
      tf_, shifted_region(tf_, js), [&](const VecI& x) {
        VecI j = tf_.point_of(origin, x);
        return !nest_.space.contains(j);
      });
  return !completed;  // stopped early <=> found a point
}

i64 TiledNest::tile_point_count(const VecI& js) const {
  // Row walk with strength-reduced point recovery: one P' matvec per
  // row, then j advances by the constant P'(c_n e_n) — no std::function
  // dispatch or per-point matrix product.
  const int n = tf_.n();
  const VecI origin(static_cast<std::size_t>(n), 0);
  const VecI jstep = row_point_step(tf_);
  i64 count = 0;
  for (TtisRowWalker row(tf_, shifted_region(tf_, js)); row.valid();
       row.next()) {
    VecI j = tf_.point_of(origin, row.row_start());
    const i64 cnt = row.row_points();
    for (i64 i = 0; i < cnt; ++i) {
      if (nest_.space.contains(j)) ++count;
      for (int k = 0; k < n; ++k) {
        j[static_cast<std::size_t>(k)] += jstep[static_cast<std::size_t>(k)];
      }
    }
  }
  return count;
}

TtisRegion TiledNest::tile_region(const VecI& js) const {
  return shifted_region(tf_, js);
}

std::vector<IntRange> TiledNest::tile_space_box() const {
  return tile_space_.bounding_box();
}

std::vector<VecI> TiledNest::nonempty_tiles() const {
  std::vector<VecI> out;
  tile_space_.scan([&](const VecI& js) {
    if (tile_nonempty(js)) out.push_back(js);
  });
  return out;
}

i64 TiledNest::total_points() const { return nest_.space.count_points(); }

}  // namespace ctile
