#include "tiling/census.hpp"

#include "linalg/int_matops.hpp"

namespace ctile {

void TileCensus::init_box(const TiledNest& tiled) {
  std::vector<IntRange> box = tiled.tile_space_box();
  i64 cells = 1;
  for (const IntRange& r : box) {
    CTILE_ASSERT(!r.empty());
    lo_.push_back(r.lo);
    ext_.push_back(r.count());
    cells = mul_ck(cells, r.count());
  }
  counts_.assign(static_cast<std::size_t>(cells), 0);
}

i64* TileCensus::slot(const VecI& js) {
  i64 idx = 0;
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    i64 rel = js[k] - lo_[k];
    CTILE_ASSERT_MSG(rel >= 0 && rel < ext_[k],
                     "census: tile outside the tile-space bounding box");
    idx = idx * ext_[k] + rel;
  }
  return &counts_[static_cast<std::size_t>(idx)];
}

void TileCensus::finalize_bounds() {
  const int n = static_cast<int>(lo_.size());
  bounds_.lo.assign(static_cast<std::size_t>(n), 0);
  bounds_.hi.assign(static_cast<std::size_t>(n), -1);
  bool any = false;
  // One pass over the dense array, delinearizing indices of nonzero
  // cells.
  for (std::size_t idx = 0; idx < counts_.size(); ++idx) {
    if (counts_[idx] == 0) continue;
    i64 rem = static_cast<i64>(idx);
    VecI js(static_cast<std::size_t>(n));
    for (int k = n; k-- > 0;) {
      js[static_cast<std::size_t>(k)] = lo_[static_cast<std::size_t>(k)] +
                                        rem % ext_[static_cast<std::size_t>(k)];
      rem /= ext_[static_cast<std::size_t>(k)];
    }
    if (!any) {
      bounds_.lo = js;
      bounds_.hi = js;
      any = true;
      continue;
    }
    for (int k = 0; k < n; ++k) {
      bounds_.lo[static_cast<std::size_t>(k)] =
          std::min(bounds_.lo[static_cast<std::size_t>(k)],
                   js[static_cast<std::size_t>(k)]);
      bounds_.hi[static_cast<std::size_t>(k)] =
          std::max(bounds_.hi[static_cast<std::size_t>(k)],
                   js[static_cast<std::size_t>(k)]);
    }
  }
  CTILE_ASSERT_MSG(any, "census: empty iteration space");
}

TileCensus::TileCensus(const TiledNest& tiled, bool) { init_box(tiled); }

TileCensus::TileCensus(const TiledNest& tiled) : TileCensus(tiled, true) {
  const TilingTransform& tf = tiled.transform();
  tiled.nest().space.scan([&](const VecI& j) {
    ++*slot(tf.tile_of(j));
    ++total_;
  });
  finalize_bounds();
}

TileCensus TileCensus::from_box(const TiledNest& tiled, const VecI& lo,
                                const VecI& hi, const MatI& skew) {
  TileCensus census(tiled, true);
  const TilingTransform& tf = tiled.transform();
  const int n = tf.n();
  CTILE_ASSERT(static_cast<int>(lo.size()) == n &&
               static_cast<int>(hi.size()) == n && skew.rows() == n);
  // Combined map: tile_k(j) = floor((Hp * T * j)_k / v_k), flattened to
  // local buffers for an allocation-free sweep.
  const MatI a = mul(tf.Hp(), skew);
  std::vector<i64> arow(static_cast<std::size_t>(n) * n);
  std::vector<i64> v(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    v[static_cast<std::size_t>(r)] = tf.v(r);
    for (int c = 0; c < n; ++c) {
      arow[static_cast<std::size_t>(r) * n + c] = a(r, c);
    }
  }
  VecI j = lo;
  VecI js(static_cast<std::size_t>(n));
  for (;;) {
    for (int r = 0; r < n; ++r) {
      i64 acc = 0;
      for (int c = 0; c < n; ++c) {
        acc += arow[static_cast<std::size_t>(r) * n + c] *
               j[static_cast<std::size_t>(c)];
      }
      js[static_cast<std::size_t>(r)] =
          floor_div(acc, v[static_cast<std::size_t>(r)]);
    }
    ++*census.slot(js);
    ++census.total_;
    // Odometer increment over the box.
    int k = n - 1;
    while (k >= 0) {
      if (++j[static_cast<std::size_t>(k)] <= hi[static_cast<std::size_t>(k)]) {
        break;
      }
      j[static_cast<std::size_t>(k)] = lo[static_cast<std::size_t>(k)];
      --k;
    }
    if (k < 0) break;
  }
  census.finalize_bounds();
  return census;
}

i64 TileCensus::count(const VecI& js) const {
  i64 idx = 0;
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    i64 rel = js[k] - lo_[k];
    if (rel < 0 || rel >= ext_[k]) return 0;
    idx = idx * ext_[k] + rel;
  }
  return counts_[static_cast<std::size_t>(idx)];
}

const TileCensus::Bounds& TileCensus::nonempty_bounds() const {
  return bounds_;
}

}  // namespace ctile
