// Interior/boundary tile classification for the strength-reduced sweep,
// and the intra-tile boundary-band/interior-remainder split for the
// overlapped (pipelined) schedule.
//
// A tile j^S is *interior* when (a) every TTIS lattice point of the tile
// is a real iteration point (the clipped walk equals the unclipped one)
// and (b) every dependence predecessor of every tile point lies inside
// J^n.  Such a tile can be swept with zero polyhedron contains() tests
// and zero initial-value branches — the executors' fast path.
//
// The test is geometric: the tile's points all lie in the closed
// parallelepiped with corners  P j^S + P' x_c,  x_c in prod{0, v_k - 1},
// so by convexity of J^n it suffices that every corner — and every
// corner shifted by -d_l for each dependence column d_l — satisfies the
// iteration-space inequalities rationally.  With a TileCensus, condition
// (a) is decided exactly (count == tile size) and the corner test is
// only needed for the dependence shifts.
//
// The classification is *sufficient, not necessary*: a conservative
// answer only sends a genuinely-interior tile down the (always correct)
// general boundary path.  Every tile in the tile-space bounding box is
// classified once at construction; lookups are a flat array read, safe
// to share across executor ranks.
#pragma once

#include "tiling/census.hpp"
#include "tiling/ttis.hpp"

namespace ctile {

/// Partition of the full-tile TTIS lattice into the communication
/// *boundary band* — the union of the pack regions, i.e. the points
/// whose values some neighbour processor is waiting for — and the
/// *interior remainder* (everything else).
///
/// Pack regions are one-sided boxes reaching the tile's top corner
/// (lo_k = max(0, dm_k * cc_k), hi_k = v_k - 1), so within each TTIS
/// row the band is a *suffix* of the row's points (asserted at
/// construction) and the whole partition is captured by one split index
/// per row: row points [0, split) are remainder, [split, row_points)
/// are band.  Rows are those of TtisRowWalker over the full tile, which
/// are identical for every tile, so one BandSplit serves all tiles and
/// all chain positions.
///
/// Legality of sweeping the remainder before the band: every
/// transformed dependence d' is componentwise non-negative, and each
/// pack region is upward closed in the tile box, so a remainder point p
/// with predecessor p - d' in some pack region would itself lie in that
/// region — contradiction.  Hence no remainder point reads a band point
/// and remainder-first / band-last is a topological order of the
/// intra-tile dependences; the overlapped executor exploits this to
/// fire non-blocking sends the moment the band is done, hiding the
/// transfer behind nothing — the remainder has already been computed —
/// while the *next* tile's remainder overlaps the messages in flight.
class BandSplit {
 public:
  BandSplit(const TilingTransform& tf,
            const std::vector<TtisRegion>& band_regions);

  /// Number of TTIS rows of the full tile.
  std::size_t rows() const { return split_.size(); }

  /// First band point index of row `row` (== the number of remainder
  /// points of that row; equals the row's point count when the row has
  /// no band points).
  i64 split(std::size_t row) const {
    CTILE_ASSERT(row < split_.size());
    return split_[row];
  }

  /// Lattice points in the band (union of the pack regions) per tile.
  i64 band_points() const { return band_points_; }

  /// Lattice points in the remainder per tile.
  i64 remainder_points() const { return remainder_points_; }

 private:
  std::vector<i64> split_;
  i64 band_points_ = 0;
  i64 remainder_points_ = 0;
};

class TileClassifier {
 public:
  /// Classifies every tile of the tile-space bounding box.  `census` is
  /// optional (may be null); when present it both sharpens the fullness
  /// test and short-circuits obviously-boundary tiles.  `band_regions`
  /// (optional) are the communication pack regions; when given, the
  /// classifier also computes the boundary-band point count, so benches
  /// can report the compute-to-hideable-communication ratio.
  explicit TileClassifier(const TiledNest& tiled,
                          const TileCensus* census = nullptr,
                          const std::vector<TtisRegion>* band_regions =
                              nullptr);

  /// True iff js was classified interior (false outside the box).
  bool interior(const VecI& js) const;

  /// Number of interior tiles in the box.
  i64 num_interior() const { return num_interior_; }

  /// Lattice points per tile in the communication boundary band (the
  /// union of the pack regions); 0 when no band regions were supplied.
  i64 boundary_band_points() const { return band_points_; }

 private:
  VecI lo_;
  VecI ext_;
  std::vector<unsigned char> flags_;
  i64 num_interior_ = 0;
  i64 band_points_ = 0;
};

}  // namespace ctile
