// Interior/boundary tile classification for the strength-reduced sweep.
//
// A tile j^S is *interior* when (a) every TTIS lattice point of the tile
// is a real iteration point (the clipped walk equals the unclipped one)
// and (b) every dependence predecessor of every tile point lies inside
// J^n.  Such a tile can be swept with zero polyhedron contains() tests
// and zero initial-value branches — the executors' fast path.
//
// The test is geometric: the tile's points all lie in the closed
// parallelepiped with corners  P j^S + P' x_c,  x_c in prod{0, v_k - 1},
// so by convexity of J^n it suffices that every corner — and every
// corner shifted by -d_l for each dependence column d_l — satisfies the
// iteration-space inequalities rationally.  With a TileCensus, condition
// (a) is decided exactly (count == tile size) and the corner test is
// only needed for the dependence shifts.
//
// The classification is *sufficient, not necessary*: a conservative
// answer only sends a genuinely-interior tile down the (always correct)
// general boundary path.  Every tile in the tile-space bounding box is
// classified once at construction; lookups are a flat array read, safe
// to share across executor ranks.
#pragma once

#include "tiling/census.hpp"

namespace ctile {

class TileClassifier {
 public:
  /// Classifies every tile of the tile-space bounding box.  `census` is
  /// optional (may be null); when present it both sharpens the fullness
  /// test and short-circuits obviously-boundary tiles.
  explicit TileClassifier(const TiledNest& tiled,
                          const TileCensus* census = nullptr);

  /// True iff js was classified interior (false outside the box).
  bool interior(const VecI& js) const;

  /// Number of interior tiles in the box.
  i64 num_interior() const { return num_interior_; }

 private:
  VecI lo_;
  VecI ext_;
  std::vector<unsigned char> flags_;
  i64 num_interior_ = 0;
};

}  // namespace ctile
