// Exact per-tile iteration counts, stored densely over the tile-space
// bounding box.
//
// The census is the ground truth the rational tile-space shadow
// approximates: count(js) > 0 exactly when tile js owns an iteration
// point.  The runtime uses it to restrict computation and communication
// to genuinely nonempty tiles (the shadow alone admits "ghost" boundary
// tiles that would idle processors and emit unused messages), and the
// cluster simulator uses the counts as per-tile compute costs.
#pragma once

#include "tiling/tile_space.hpp"

namespace ctile {

class TileCensus {
 public:
  /// Exact census by scanning the (possibly non-rectangular) iteration
  /// space polyhedron.  Right for tests and small spaces.
  explicit TileCensus(const TiledNest& tiled);

  /// Fast exact census for nests that are a unimodular skew T of a
  /// rectangular box [lo, hi] (T = identity for unskewed nests): sweeps
  /// the box with allocation-free integer arithmetic.  Equivalent to the
  /// polyhedron scan — the benches' path for multi-million-point spaces.
  static TileCensus from_box(const TiledNest& tiled, const VecI& lo,
                             const VecI& hi, const MatI& skew);

  /// Iterations in tile js (0 for tiles with no points).
  i64 count(const VecI& js) const;
  i64 total() const { return total_; }

  /// Tight per-dimension bounds over nonempty tiles (the integer-exact
  /// replacement for the shadow's bounding box).  Empty optional when
  /// the census is empty.
  struct Bounds {
    VecI lo;
    VecI hi;
  };
  const Bounds& nonempty_bounds() const;

 private:
  explicit TileCensus(const TiledNest& tiled, bool /*defer*/);
  void init_box(const TiledNest& tiled);
  i64* slot(const VecI& js);
  void finalize_bounds();

  VecI lo_;
  VecI ext_;
  std::vector<i64> counts_;
  i64 total_ = 0;
  Bounds bounds_;
};

}  // namespace ctile
