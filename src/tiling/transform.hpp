// The tiling transformation machinery of \S2.2-\S2.3.
//
// Given a nonsingular rational tiling matrix H (rows normal to the tile
// facets), this class derives every auxiliary object the paper's method
// needs:
//
//   P    = H^{-1}                 (tile edge vectors as columns)
//   V    = diag(v_1..v_n), v_k the smallest positive integer making
//          v_k * row_k(H) integral
//   H'   = V H                    (integral, maps the tile to the
//                                  rectangle [0, v_k - 1]^n: the TTIS)
//   P'   = H'^{-1}
//   H~'  = HNF(H')                (column Hermite Normal Form; lower
//                                  triangular)
//   c_k  = h~'_kk                 (TTIS traversal strides)
//   a_kl = h~'_kl, l < k          (incremental offsets)
//
// Key exact-arithmetic identities used throughout:
//   j^S        = floor(H j)     computed as floor((H' j)_k / v_k)
//   j' (TTIS)  = H' j - V j^S   (always integral)
//   j          = P'(V j^S + j') = P j^S + P' j'
#pragma once

#include <string>

#include "linalg/hnf.hpp"
#include "linalg/matrix.hpp"

namespace ctile {

class TilingTransform {
 public:
  /// Builds all derived matrices; throws LegalityError if h is singular.
  explicit TilingTransform(MatQ h);

  int n() const { return n_; }
  const MatQ& H() const { return h_; }
  const MatQ& P() const { return p_; }
  const MatI& V() const { return v_; }
  i64 v(int k) const { return v_(k, k); }
  const MatI& Hp() const { return hp_; }
  const MatQ& Pp() const { return pp_; }
  const MatI& Hnf() const { return hnf_; }
  const MatI& U() const { return u_; }

  /// TTIS traversal stride of dimension k: c_k = h~'_kk.
  i64 stride(int k) const { return hnf_(k, k); }
  /// Incremental offset a_kl = h~'_kl (l < k).
  i64 offset(int k, int l) const {
    CTILE_ASSERT(l < k);
    return hnf_(k, l);
  }

  /// |det P| as an exact rational; the tile size (points per full tile)
  /// when P is integral.
  Rat det_p() const { return det_p_; }

  /// Points per full tile; requires an integral point count (always true
  /// for integral P).  The identity |TIS| = prod(v_k) / prod(c_k) holds
  /// because H~' and H' generate the same lattice.
  i64 tile_size() const;

  /// True iff P = H^{-1} is an integral matrix (uniform full tiles; the
  /// parallel runtime requires this).
  bool p_integral() const;

  /// True iff every stride divides its TTIS extent (c_k | v_k), which the
  /// dense LDS addressing of \S3.1 relies on.
  bool strides_compatible() const;

  /// Tile index j^S = floor(H j), exactly.
  VecI tile_of(const VecI& j) const;

  /// TTIS coordinates of j relative to tile j^S: j' = H' j - V j^S.
  VecI ttis_of(const VecI& j, const VecI& js) const;

  /// Convenience: ttis_of(j, tile_of(j)).
  VecI ttis_of(const VecI& j) const;

  /// Inverse mapping j = P'(V j^S + j'); asserts the result is integral
  /// (it is whenever (j^S, j') came from an actual iteration point).
  VecI point_of(const VecI& js, const VecI& jp) const;

  /// True iff j' lies in the TTIS lattice H' Z^n (checked via P' j'
  /// integrality) and inside the box [0, v_k - 1]^n.
  bool in_ttis(const VecI& jp) const;

  /// Transformed dependence d' = H' d; throws LegalityError if d' is not
  /// integral... d' = H' d is always integral (H' integer), provided for
  /// symmetry with the paper's D' = H' D.
  VecI transform_dep(const VecI& d) const;

  std::string describe() const;

 private:
  int n_;
  MatQ h_;
  MatQ p_;
  MatI v_;
  MatI hp_;
  MatQ pp_;
  MatI hnf_;
  MatI u_;
  Rat det_p_;
  // Scaled-integer P': pp_scaled_ = den_ * P' with den_ > 0, for exact
  // integer inner loops in point_of.
  MatI pp_scaled_;
  i64 den_;
};

}  // namespace ctile
