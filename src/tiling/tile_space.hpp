// The Tile Space J^S = { floor(H j) : j in J^n } and tiled views of a
// loop nest.
//
// The tile space is computed exactly as the projection of
//   { (j^S, j) : j in J^n  and  0 <= H' j - V j^S <= V - 1 }
// onto the j^S variables by Fourier-Motzkin.  The projection is the
// rational shadow: a boundary j^S in the shadow may contain no integer
// point; such tiles are detected by nonempty() (exact, via a clipped TTIS
// walk) and skipped by the executors, matching the paper's remark that
// boundary tiles are corrected with the original iteration-space
// inequalities.
#pragma once

#include <optional>

#include "deps/loop_nest.hpp"
#include "tiling/transform.hpp"
#include "tiling/ttis.hpp"

namespace ctile {

class TiledNest {
 public:
  /// Validates legality (H d >= 0 per dependence) and builds the tile
  /// space.  Throws LegalityError on an illegal tiling.
  TiledNest(LoopNest nest, TilingTransform transform);

  const LoopNest& nest() const { return nest_; }
  const TilingTransform& transform() const { return tf_; }

  /// The tile-space polyhedron over j^S (rational shadow, see above).
  const Polyhedron& tile_space() const { return tile_space_; }

  /// Tile dependence matrix D^S = { floor(H (j + d)) : j in TIS, d in D },
  /// nonzero columns only, computed exactly by walking the boundary band
  /// of the TTIS.  Cached after the first call.
  const MatI& tile_deps() const;

  /// Transformed dependencies D' = H' D (columns).
  MatI ttis_deps() const;

  /// Exact emptiness test for a tile: walks the TTIS (clipped by J^n)
  /// until the first point.
  bool tile_nonempty(const VecI& js) const;

  /// Number of iteration points in tile js (exact, clipped).  Row-walk
  /// based: no per-point callback or matrix-vector product.
  i64 tile_point_count(const VecI& js) const;

  /// The TTIS box of tile js on the *unshifted* lattice H' Z^n: the full
  /// region translated by +V js.  Lattice points x inside it are exactly
  /// the tile's points (j = P' x integral, TTIS coordinates x - V js);
  /// this is the region the executors' row walkers sweep.
  TtisRegion tile_region(const VecI& js) const;

  /// Invoke fn for each iteration point j of tile js, in TTIS traversal
  /// order; yields both TTIS coordinates and the original point.
  void for_each_tile_point(
      const VecI& js,
      const std::function<void(const VecI& jp, const VecI& j)>& fn) const;

  /// Bounding box of the tile space (per dimension).
  std::vector<IntRange> tile_space_box() const;

  /// All tiles of the (rational-shadow) tile space that are nonempty.
  std::vector<VecI> nonempty_tiles() const;

  /// Total iteration count of the nest (scan-based; for tests and as the
  /// sequential-time numerator in speedup computations).
  i64 total_points() const;

 private:
  LoopNest nest_;
  TilingTransform tf_;
  Polyhedron tile_space_;
  mutable std::optional<MatI> tile_deps_;
};

/// Builds the 2n-dimensional linking polyhedron { (j^S, j) } described in
/// the header comment (exposed for the code generator, which emits the
/// sequential tiled loop bounds from its projections).
Polyhedron tile_link_polyhedron(const LoopNest& nest,
                                const TilingTransform& tf);

}  // namespace ctile
