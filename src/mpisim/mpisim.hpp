// In-process message-passing substrate with MPI-like semantics.
//
// The paper's generated code targets MPI on a 16-node cluster.  This
// repository has no MPI installation, so the generated communication
// structure runs against this substrate instead: send is buffered (like
// MPI_Send on small messages / MPI_Bsend), recv blocks until a message
// matching (source, tag) arrives, and per (src, dst, tag) channel
// ordering is FIFO — the same guarantees the paper's RECEIVE/SEND
// pseudocode relies on.
//
// Two interchangeable backends drive the ranks (DESIGN.md §11):
//
//  - kThread (default): every rank is an OS thread.  Real concurrency,
//    real preemption — this is the race-detection oracle (the TSan CI
//    job is pinned to it) and the reference for wall-clock timing tests.
//  - kEvent: every rank is a stackful fiber on ONE OS thread, driven by
//    a cooperatively-scheduled event loop (event_scheduler.hpp) with a
//    deterministic, seed-controlled interleaving policy and a virtual
//    clock, so 1k–16k-rank meshes simulate cheaply.  The latency model
//    advances simulated time instead of sleeping.  Both backends must
//    produce bitwise-identical numerics and identical per-channel
//    message traces for any correct program.
//
// Non-blocking primitives (isend / irecv / test / wait / wait_all) model
// the eager (buffered) MPI protocol: isend stages the payload into a
// transit buffer and completes from the caller's point of view
// immediately — the caller's buffer is returned to its own pool at
// initiation, so a rank that only sends still recycles buffers — while
// the receive side gets the transit buffer itself (zero-copy handoff)
// and releases it into its pool after unpacking.
//
// An optional transfer-latency model makes computation/communication
// overlap measurable in-process: each message carries a delivery
// deadline (initiation time + per-message + per-double cost); recv and
// probe only match messages whose deadline has passed.  A blocking
// send() additionally occupies the calling rank for the transfer
// duration (MPI_Send wire occupation on the CPU's critical path),
// whereas isend() returns immediately (a DMA-capable NIC drains the
// wire) — the same distinction cluster/simulator draws between its
// kBlocking and kOverlapped schedules.  Under the event backend the
// occupation is virtual time, so high-latency studies cost no wall
// clock.
//
// A cooperating failure model: if any rank throws, the communicator is
// aborted and every blocked recv/barrier (and every test() poll on a
// receive) throws Error, so tests fail loudly instead of deadlocking.
// The event backend additionally detects true deadlock — all ranks
// blocked with no pending deadline — and aborts the communicator.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "mpisim/event_scheduler.hpp"
#include "support/checked_int.hpp"
#include "support/error.hpp"

namespace ctile::mpisim {

/// Synthetic transfer-cost model.  Disabled (all-zero) by default: every
/// message is deliverable the moment it is enqueued and blocking sends
/// return immediately, which keeps the substrate free of timing overhead
/// for correctness tests.
struct LatencyModel {
  double per_message_s = 0.0;  ///< fixed cost per message (wire latency)
  double per_double_s = 0.0;   ///< cost per payload double (1 / bandwidth)

  bool enabled() const { return per_message_s > 0.0 || per_double_s > 0.0; }
  double transfer_s(std::size_t doubles) const {
    return per_message_s + per_double_s * static_cast<double>(doubles);
  }
};

/// Which engine drives the ranks in run_ranks.
enum class Backend {
  kAuto,    ///< resolve from $CTILE_MPISIM_BACKEND ("thread"/"event"),
            ///< defaulting to kThread
  kThread,  ///< one OS thread per rank (race-detection oracle)
  kEvent,   ///< fibers + virtual clock on one OS thread (scales to 16k)
};

struct CommConfig {
  LatencyModel latency;
  Backend backend = Backend::kAuto;
  /// Seed for the event backend's interleaving policy.  Two runs with
  /// the same seed replay the exact same schedule; two different seeds
  /// must still produce identical numerics for a correct program.
  u64 seed = 1;
  /// Record per-channel message traces (see Comm::channel_traces).
  bool trace = false;
  /// Fiber stack size for the event backend (mmap'd, lazily committed).
  std::size_t fiber_stack_bytes = 256 * 1024;
};

/// Compile-time description of the buffer discipline the non-blocking
/// path implements — the facts ctile-verify's rule V7 (buffer-lifetime
/// safety) takes as its model of this substrate.  Each flag names an
/// invariant of the code below; if an implementation change flips one,
/// flip it here and the static proof (and its mutation tests) follow.
struct PoolDiscipline {
  /// isend stages the payload into a transit buffer at initiation (the
  /// eager protocol): the in-flight message never references the
  /// caller's buffer, so rewriting the pack buffer after isend returns
  /// cannot corrupt the message.
  bool eager_transit_copy = true;
  /// The caller's buffer is recycled into the *sender's* pool the moment
  /// isend returns.  Safe only together with eager_transit_copy.
  bool sender_buffer_recycled_at_initiation = true;
  /// The transit buffer is handed to the receiver zero-copy and enters a
  /// pool only when the receiver releases it after unpacking — a queued
  /// (in-flight) message's storage is never available for reuse.
  bool transit_released_after_unpack = true;
  /// Per-rank pool bound (excess buffers are freed, never aliased).
  std::size_t max_pooled_buffers = 64;
};
inline constexpr PoolDiscipline kPoolDiscipline{};

struct Message {
  int src;
  i64 tag;
  std::vector<double> data;
  /// Delivery deadline under the latency model; the epoch (default)
  /// means "deliverable immediately".
  std::chrono::steady_clock::time_point ready_at{};
};

/// Handle for a non-blocking operation.  Plain value type: move it
/// around freely, complete it with Comm::test / Comm::wait.  A send
/// request completes when the modelled transfer has drained (the payload
/// buffer itself was already recycled at initiation — eager protocol); a
/// receive request completes when a matching deliverable message has
/// been consumed, at which point the payload is held in `payload` until
/// wait() hands it out.
struct Request {
  enum class Kind { kNone, kSend, kRecv };
  Kind kind = Kind::kNone;
  int owner = -1;  ///< rank that posted the operation
  int peer = -1;   ///< destination (send) or source (recv) rank
  i64 tag = 0;
  std::chrono::steady_clock::time_point ready_at{};  ///< send: drain time
  bool done = false;
  std::vector<double> payload;  ///< recv: stashed on completion
};

class Comm {
 public:
  using Clock = std::chrono::steady_clock;

  /// (src, dst, tag): one FIFO channel.
  using ChannelKey = std::tuple<int, int, i64>;
  /// Per-channel sequence of message digests (FNV-1a over the payload
  /// bytes), in enqueue order.  Channel order is deterministic even
  /// under the thread backend (per-channel FIFO), so equal traces across
  /// backends prove the same messages flowed in the same per-channel
  /// order.
  using ChannelTraces = std::map<ChannelKey, std::vector<u64>>;

  /// One entry of the totally-ordered communication event log (trace
  /// mode only).  kSend is logged at isend/send initiation *before* the
  /// message becomes matchable, kRecv at the instant a receive consumes
  /// it; both under one lock, so the log order is a true linearization
  /// of the observable communication events.  ctile-verify's HB-graph
  /// cross-validation test asserts this order never inverts a static
  /// happens-before edge.
  struct TraceEvent {
    enum class Kind { kSend, kRecv };
    Kind kind;
    int src;
    int dst;
    i64 tag;
  };

  explicit Comm(int size, CommConfig config = {});

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Buffered send: enqueues and returns.  Under the latency model the
  /// calling rank is additionally occupied for the transfer duration
  /// (blocking-schedule wire occupation; virtual time under the event
  /// backend).  Throws Error if the communicator has been aborted (a
  /// surviving rank must not keep pumping messages nobody will drain).
  void send(int src, int dst, i64 tag, std::vector<double> data);

  /// Non-blocking send (eager protocol): stages the payload into a
  /// transit buffer drawn from the destination pool, enqueues it with
  /// its delivery deadline, and returns the caller's buffer to the
  /// *sender's* pool immediately — the buffer is reusable the moment
  /// isend returns, and a rank that only sends still gets pool hits.
  /// The returned request completes (test/wait) when the modelled
  /// transfer has drained.
  Request isend(int src, int dst, i64 tag, std::vector<double> data);

  /// Pre-post a receive for the first message from `src` with tag `tag`.
  /// No resources are reserved: the request records the match keys, and
  /// test/wait perform the actual (FIFO, deadline-respecting) match.
  /// Correctness of pre-posted receives therefore requires that no two
  /// outstanding receives on one rank share (src, tag) — the runtime's
  /// tag discipline, proven statically by ctile-verify rule V3.
  Request irecv(int dst, int src, i64 tag);

  /// Completes `req` if possible without blocking.  A send request
  /// completes once its transfer deadline has passed; a receive request
  /// completes by consuming the *first* FIFO match on its channel once
  /// that message is deliverable.  Returns req.done.  Throws Error on an
  /// aborted communicator when a receive cannot complete — a rank
  /// polling test() must observe a dead peer exactly like a blocking
  /// recv() does, not livelock.
  bool test(Request& req);

  /// Blocks until `req` completes.  For a receive request the consumed
  /// payload is returned (zero-copy: the sender's transit buffer); for a
  /// send request the return value is empty and the wait models the NIC
  /// draining the wire (completion is a local time event, so it still
  /// succeeds on an aborted communicator).  Throws Error if the
  /// communicator is aborted while waiting on a receive.
  std::vector<double> wait(Request& req);

  /// wait() over a batch.  Receive payloads stay stashed in each
  /// request's `payload` field (callers that care drain them
  /// individually); intended for retiring outstanding send requests.
  void wait_all(std::vector<Request>& reqs);

  /// Blocking receive of the first message from `src` with tag `tag`
  /// (FIFO among matching messages, honouring delivery deadlines).
  /// Throws Error if the communicator is aborted while waiting.
  std::vector<double> recv(int dst, int src, i64 tag);

  /// True iff the *first* FIFO match on the (src → dst, tag) channel is
  /// already deliverable.  Mirrors recv()'s matching rule exactly: when
  /// probe() returns true, recv() completes without blocking.  (A later
  /// deliverable message behind an in-flight first match does NOT count
  /// — recv would block on the earlier one.)
  bool probe(int dst, int src, i64 tag);

  /// Draw a payload buffer of `size` doubles from rank's local pool,
  /// preferring a pooled buffer whose capacity already covers `size`
  /// (a true reuse: the resize below cannot reallocate).  Falls back to
  /// a fresh allocation when no sufficient buffer is pooled.  The
  /// contents are unspecified — callers overwrite every element when
  /// packing.  Pass the buffer to send()/isend(), which take ownership.
  std::vector<double> acquire_buffer(int rank, std::size_t size);

  /// Return a buffer (typically one obtained from recv()/wait(), after
  /// unpacking) to rank's local pool so steady-state communication does
  /// zero heap allocation.  With isend's eager staging every rank's pool
  /// is fed locally (send buffers at initiation, received transit
  /// buffers after unpack), so pools no longer rely on symmetric traffic
  /// to stay warm.  Pools are bounded; excess buffers are simply freed.
  void release_buffer(int rank, std::vector<double>&& buf);

  /// Number of acquire_buffer calls served from a pool WITHOUT
  /// reallocating (capacity-sufficient hits only; a pooled buffer that
  /// resize would have to regrow is not a reuse).
  i64 pool_reuses() const;

  /// Largest number of buffers any single rank's pool ever held — the
  /// pool high-water mark.  Bounded by construction (kMaxPooledBuffers);
  /// tests assert both that pooling engages (> 0 under traffic) and that
  /// the bound holds.
  i64 pool_high_water() const;

  /// Full barrier across all ranks.  Throws Error on abort — including
  /// for the LAST-arriving rank: once the communicator is aborted no
  /// rank may observe barrier success, so all participants of the
  /// broken barrier instance agree.
  void barrier(int rank);

  /// Wake all waiters with an error; used when a rank dies.
  void abort();

  /// Occupy the calling rank for `seconds` of modelled computation:
  /// virtual time under the event backend, a real sleep under the
  /// thread backend.  The workload-modelling primitive for wavefront /
  /// drain studies (bench/wavefront_drain).
  void advance(int rank, double seconds);

  /// Current time as the ranks of this communicator experience it:
  /// the scheduler's virtual clock under the event backend, the real
  /// steady clock otherwise.
  Clock::time_point now() const;

  /// True iff this communicator is driven by the event backend.
  bool event_backend() const { return sched_ != nullptr; }

  /// Snapshot of the recorded per-channel traces (empty unless
  /// CommConfig::trace).  Same synchronization contract as the send
  /// counters: complete relative to sends that happened-before the read
  /// (readers barrier() first).
  ChannelTraces channel_traces() const;

  /// Snapshot of the global communication event log (empty unless
  /// CommConfig::trace).  Same synchronization contract as the send
  /// counters: complete relative to events that happened-before the
  /// read (readers barrier() first).
  std::vector<TraceEvent> event_log() const;

  /// Total messages and payload doubles sent (for communication-volume
  /// accounting in tests and benches).
  ///
  /// Stats contract: counters are updated after the message is enqueued
  /// in the destination mailbox, so they never over-count in-flight
  /// traffic; but they are only guaranteed complete relative to sends
  /// that happened-before the read.  Readers synchronize with a
  /// barrier() first — ParallelExecutor::run reads them on rank 0 only
  /// after the full-communicator barrier that follows every rank's last
  /// send.
  i64 messages_sent() const;
  i64 doubles_sent() const;

  /// Internal: wired by run_ranks' event backend before any fiber runs.
  /// All blocking points and clock reads then route through `sched`.
  void attach_scheduler(EventScheduler* sched);

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;  ///< thread backend
    WaitList waiters;            ///< event backend
    std::deque<Message> queue;
  };

  // Rank-local free lists of payload buffers.  Each pool has its own
  // lock (acquire by the owning rank, release by whichever rank drained
  // the message — or by isend staging into the destination pool),
  // bounded to keep a pathological sender from hoarding memory.
  struct BufferPool {
    std::mutex mu;
    std::vector<std::vector<double>> free;
    std::size_t high_water = 0;
  };
  static constexpr std::size_t kMaxPooledBuffers =
      kPoolDiscipline.max_pooled_buffers;

  /// Append a TraceEvent (trace mode only; see event_log).  kSend must
  /// be logged before the message is enqueued so a racing consume can
  /// never appear earlier in the log than the send that fed it.
  void log_event(TraceEvent::Kind kind, int src, int dst, i64 tag);

  /// Delivery deadline of a payload initiated now (epoch when the
  /// latency model is disabled, so matching stays branch-cheap).
  Clock::time_point deadline(std::size_t doubles) const;

  /// Enqueue into dst's mailbox, record the trace, bump send counters.
  void enqueue(int dst, Message message);

  /// True iff the message's delivery deadline has passed (against the
  /// backend's clock).
  bool deliverable(const Message& m) const {
    return m.ready_at == Clock::time_point{} || m.ready_at <= now();
  }

  /// --- Backend seam: every blocking point dispatches here, so the
  /// Comm logic above is shared verbatim between both backends. ---
  void occupy_until(Clock::time_point t);
  void box_wait(Mailbox& box, std::unique_lock<std::mutex>& lock);
  void box_wait_until(Mailbox& box, std::unique_lock<std::mutex>& lock,
                      Clock::time_point t);
  void box_notify(Mailbox& box);
  void barrier_wait(std::unique_lock<std::mutex>& lock);
  void barrier_notify();

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<std::unique_ptr<BufferPool>> pools_;
  CommConfig config_;
  EventScheduler* sched_ = nullptr;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;  ///< thread backend
  WaitList barrier_waiters_;            ///< event backend
  int barrier_count_ = 0;
  i64 barrier_generation_ = 0;

  mutable std::mutex stats_mu_;
  i64 messages_sent_ = 0;
  i64 doubles_sent_ = 0;
  i64 pool_reuses_ = 0;
  ChannelTraces traces_;
  std::vector<TraceEvent> events_;

  std::atomic<bool> aborted_{false};
};

/// Run fn(rank, comm) on `size` ranks sharing one Comm.  The backend —
/// one OS thread per rank, or cooperatively-scheduled fibers with a
/// virtual clock on the calling thread — is selected by config.backend
/// (kAuto honours $CTILE_MPISIM_BACKEND).  If any rank throws, aborts
/// the communicator, retires everyone, and rethrows the first
/// exception.  The event backend additionally turns a full deadlock
/// into an abort + Error instead of a hang.
void run_ranks(int size, const std::function<void(int, Comm&)>& fn,
               CommConfig config = {});

/// The backend run_ranks would use for `config` (env resolution
/// included) — lets tests and benches report/assert the active backend.
Backend resolve_backend(Backend requested);

}  // namespace ctile::mpisim
