// In-process message-passing substrate with MPI-like semantics.
//
// The paper's generated code targets MPI on a 16-node cluster.  This
// repository has no MPI installation, so the generated communication
// structure runs against this substrate instead: every rank is a thread,
// send is buffered (like MPI_Send on small messages / MPI_Bsend), recv
// blocks until a message matching (source, tag) arrives, and per
// (src, dst, tag) channel ordering is FIFO — the same guarantees the
// paper's RECEIVE/SEND pseudocode relies on.
//
// Non-blocking primitives (isend / irecv / test / wait / wait_all) model
// the eager (buffered) MPI protocol: isend stages the payload into a
// transit buffer and completes from the caller's point of view
// immediately — the caller's buffer is returned to its own pool at
// initiation, so a rank that only sends still recycles buffers — while
// the receive side gets the transit buffer itself (zero-copy handoff)
// and releases it into its pool after unpacking.
//
// An optional transfer-latency model makes computation/communication
// overlap measurable in-process: each message carries a delivery
// deadline (initiation time + per-message + per-double cost); recv and
// probe only match messages whose deadline has passed.  A blocking
// send() additionally occupies the calling thread for the transfer
// duration (MPI_Send wire occupation on the CPU's critical path),
// whereas isend() returns immediately (a DMA-capable NIC drains the
// wire) — the same distinction cluster/simulator draws between its
// kBlocking and kOverlapped schedules.
//
// A cooperating failure model: if any rank throws, the communicator is
// aborted and every blocked recv/barrier throws Error, so tests fail loudly
// instead of deadlocking.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "support/checked_int.hpp"
#include "support/error.hpp"

namespace ctile::mpisim {

/// Synthetic transfer-cost model.  Disabled (all-zero) by default: every
/// message is deliverable the moment it is enqueued and blocking sends
/// return immediately, which keeps the substrate free of timing overhead
/// for correctness tests.
struct LatencyModel {
  double per_message_s = 0.0;  ///< fixed cost per message (wire latency)
  double per_double_s = 0.0;   ///< cost per payload double (1 / bandwidth)

  bool enabled() const { return per_message_s > 0.0 || per_double_s > 0.0; }
  double transfer_s(std::size_t doubles) const {
    return per_message_s + per_double_s * static_cast<double>(doubles);
  }
};

struct CommConfig {
  LatencyModel latency;
};

struct Message {
  int src;
  i64 tag;
  std::vector<double> data;
  /// Delivery deadline under the latency model; the epoch (default)
  /// means "deliverable immediately".
  std::chrono::steady_clock::time_point ready_at{};
};

/// Handle for a non-blocking operation.  Plain value type: move it
/// around freely, complete it with Comm::test / Comm::wait.  A send
/// request completes when the modelled transfer has drained (the payload
/// buffer itself was already recycled at initiation — eager protocol); a
/// receive request completes when a matching deliverable message has
/// been consumed, at which point the payload is held in `payload` until
/// wait() hands it out.
struct Request {
  enum class Kind { kNone, kSend, kRecv };
  Kind kind = Kind::kNone;
  int owner = -1;  ///< rank that posted the operation
  int peer = -1;   ///< destination (send) or source (recv) rank
  i64 tag = 0;
  std::chrono::steady_clock::time_point ready_at{};  ///< send: drain time
  bool done = false;
  std::vector<double> payload;  ///< recv: stashed on completion
};

class Comm {
 public:
  explicit Comm(int size, CommConfig config = {});

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Buffered send: enqueues and returns.  Under the latency model the
  /// calling thread is additionally occupied for the transfer duration
  /// (blocking-schedule wire occupation).  Throws Error if the
  /// communicator has been aborted (a surviving rank must not keep
  /// pumping messages nobody will drain).
  void send(int src, int dst, i64 tag, std::vector<double> data);

  /// Non-blocking send (eager protocol): stages the payload into a
  /// transit buffer drawn from the destination pool, enqueues it with
  /// its delivery deadline, and returns the caller's buffer to the
  /// *sender's* pool immediately — the buffer is reusable the moment
  /// isend returns, and a rank that only sends still gets pool hits.
  /// The returned request completes (test/wait) when the modelled
  /// transfer has drained.
  Request isend(int src, int dst, i64 tag, std::vector<double> data);

  /// Pre-post a receive for the first message from `src` with tag `tag`.
  /// No resources are reserved: the request records the match keys, and
  /// test/wait perform the actual (FIFO, deadline-respecting) match.
  /// Correctness of pre-posted receives therefore requires that no two
  /// outstanding receives on one rank share (src, tag) — the runtime's
  /// tag discipline, proven statically by ctile-verify rule V3.
  Request irecv(int dst, int src, i64 tag);

  /// Completes `req` if possible without blocking.  A send request
  /// completes once its transfer deadline has passed; a receive request
  /// completes by consuming a matching deliverable message into
  /// req.payload.  Returns req.done.
  bool test(Request& req);

  /// Blocks until `req` completes.  For a receive request the consumed
  /// payload is returned (zero-copy: the sender's transit buffer); for a
  /// send request the return value is empty and the wait models the NIC
  /// draining the wire.  Throws Error if the communicator is aborted
  /// while waiting on a receive.
  std::vector<double> wait(Request& req);

  /// wait() over a batch.  Receive payloads stay stashed in each
  /// request's `payload` field (callers that care drain them
  /// individually); intended for retiring outstanding send requests.
  void wait_all(std::vector<Request>& reqs);

  /// Blocking receive of the first message from `src` with tag `tag`
  /// (FIFO among matching messages, honouring delivery deadlines).
  /// Throws Error if the communicator is aborted while waiting.
  std::vector<double> recv(int dst, int src, i64 tag);

  /// True iff a matching message is already queued and deliverable
  /// (non-blocking probe).
  bool probe(int dst, int src, i64 tag);

  /// Draw a payload buffer of `size` doubles from rank's local pool,
  /// falling back to a fresh allocation when the pool is empty.  The
  /// contents are unspecified — callers overwrite every element when
  /// packing.  Pass the buffer to send()/isend(), which take ownership.
  std::vector<double> acquire_buffer(int rank, std::size_t size);

  /// Return a buffer (typically one obtained from recv()/wait(), after
  /// unpacking) to rank's local pool so steady-state communication does
  /// zero heap allocation.  With isend's eager staging every rank's pool
  /// is fed locally (send buffers at initiation, received transit
  /// buffers after unpack), so pools no longer rely on symmetric traffic
  /// to stay warm.  Pools are bounded; excess buffers are simply freed.
  void release_buffer(int rank, std::vector<double>&& buf);

  /// Number of acquire_buffer calls served from a pool (for tests
  /// asserting that pooling actually engages in steady state).
  i64 pool_reuses() const;

  /// Largest number of buffers any single rank's pool ever held — the
  /// pool high-water mark.  Bounded by construction (kMaxPooledBuffers);
  /// tests assert both that pooling engages (> 0 under traffic) and that
  /// the bound holds.
  i64 pool_high_water() const;

  /// Full barrier across all ranks.  Throws Error on abort.
  void barrier(int rank);

  /// Wake all waiters with an error; used when a rank dies.
  void abort();

  /// Total messages and payload doubles sent (for communication-volume
  /// accounting in tests and benches).
  ///
  /// Stats contract: counters are updated after the message is enqueued
  /// in the destination mailbox, so they never over-count in-flight
  /// traffic; but they are only guaranteed complete relative to sends
  /// that happened-before the read.  Readers synchronize with a
  /// barrier() first — ParallelExecutor::run reads them on rank 0 only
  /// after the full-communicator barrier that follows every rank's last
  /// send.
  i64 messages_sent() const;
  i64 doubles_sent() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  // Rank-local free lists of payload buffers.  Each pool has its own
  // lock (acquire by the owning rank, release by whichever rank drained
  // the message — or by isend staging into the destination pool),
  // bounded to keep a pathological sender from hoarding memory.
  struct BufferPool {
    std::mutex mu;
    std::vector<std::vector<double>> free;
    std::size_t high_water = 0;
  };
  static constexpr std::size_t kMaxPooledBuffers = 64;

  /// Delivery deadline of a payload initiated now (epoch when the
  /// latency model is disabled, so matching stays branch-cheap).
  Clock::time_point deadline(std::size_t doubles) const;

  /// Enqueue into dst's mailbox and bump the send counters.
  void enqueue(int dst, Message message);

  /// True iff the message's delivery deadline has passed.
  static bool deliverable(const Message& m) {
    return m.ready_at == Clock::time_point{} ||
           m.ready_at <= Clock::now();
  }

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<std::unique_ptr<BufferPool>> pools_;
  CommConfig config_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  i64 barrier_generation_ = 0;

  mutable std::mutex stats_mu_;
  i64 messages_sent_ = 0;
  i64 doubles_sent_ = 0;
  i64 pool_reuses_ = 0;

  std::atomic<bool> aborted_{false};
};

/// Run fn(rank, comm) on `size` concurrent threads sharing one Comm.
/// If any rank throws, aborts the communicator, joins everyone, and
/// rethrows the first exception.  `config` selects the latency model.
void run_ranks(int size, const std::function<void(int, Comm&)>& fn,
               CommConfig config = {});

}  // namespace ctile::mpisim
