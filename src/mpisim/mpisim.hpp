// In-process message-passing substrate with MPI-like semantics.
//
// The paper's generated code targets MPI on a 16-node cluster.  This
// repository has no MPI installation, so the generated communication
// structure runs against this substrate instead: every rank is a thread,
// send is buffered (like MPI_Send on small messages / MPI_Bsend), recv
// blocks until a message matching (source, tag) arrives, and per
// (src, dst, tag) channel ordering is FIFO — the same guarantees the
// paper's RECEIVE/SEND pseudocode relies on.
//
// A cooperating failure model: if any rank throws, the communicator is
// aborted and every blocked recv/barrier throws Error, so tests fail loudly
// instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "support/checked_int.hpp"
#include "support/error.hpp"

namespace ctile::mpisim {

struct Message {
  int src;
  i64 tag;
  std::vector<double> data;
};

class Comm {
 public:
  explicit Comm(int size);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Buffered send: enqueues and returns immediately.  Throws Error if
  /// the communicator has been aborted (a surviving rank must not keep
  /// pumping messages nobody will drain).
  void send(int src, int dst, i64 tag, std::vector<double> data);

  /// Blocking receive of the first message from `src` with tag `tag`
  /// (FIFO among matching messages).  Throws Error if the communicator
  /// is aborted while waiting.
  std::vector<double> recv(int dst, int src, i64 tag);

  /// True iff a matching message is already queued (non-blocking probe).
  bool probe(int dst, int src, i64 tag);

  /// Draw a payload buffer of `size` doubles from rank's local pool,
  /// falling back to a fresh allocation when the pool is empty.  The
  /// contents are unspecified — callers overwrite every element when
  /// packing.  Pass the buffer to send(), which takes ownership.
  std::vector<double> acquire_buffer(int rank, std::size_t size);

  /// Return a buffer (typically one obtained from recv(), after
  /// unpacking) to rank's local pool so steady-state communication does
  /// zero heap allocation.  Buffers migrate between pools — a rank
  /// releases what it received, and draws for what it sends — which is
  /// balanced for the runtime's symmetric halo exchange.  Pools are
  /// bounded; excess buffers are simply freed.
  void release_buffer(int rank, std::vector<double>&& buf);

  /// Number of acquire_buffer calls served from a pool (for tests
  /// asserting that pooling actually engages in steady state).
  i64 pool_reuses() const;

  /// Full barrier across all ranks.  Throws Error on abort.
  void barrier(int rank);

  /// Wake all waiters with an error; used when a rank dies.
  void abort();

  /// Total messages and payload doubles sent (for communication-volume
  /// accounting in tests and benches).
  ///
  /// Stats contract: counters are updated after the message is enqueued
  /// in the destination mailbox, so they never over-count in-flight
  /// traffic; but they are only guaranteed complete relative to sends
  /// that happened-before the read.  Readers synchronize with a
  /// barrier() first — ParallelExecutor::run reads them on rank 0 only
  /// after the full-communicator barrier that follows every rank's last
  /// send.
  i64 messages_sent() const;
  i64 doubles_sent() const;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  // Rank-local free lists of payload buffers.  Each pool has its own
  // lock (acquire by the owning rank, release by whichever rank drained
  // the message), bounded to keep a pathological sender from hoarding
  // memory.
  struct BufferPool {
    std::mutex mu;
    std::vector<std::vector<double>> free;
  };
  static constexpr std::size_t kMaxPooledBuffers = 64;

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<std::unique_ptr<BufferPool>> pools_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  i64 barrier_generation_ = 0;

  mutable std::mutex stats_mu_;
  i64 messages_sent_ = 0;
  i64 doubles_sent_ = 0;
  i64 pool_reuses_ = 0;

  std::atomic<bool> aborted_{false};
};

/// Run fn(rank, comm) on `size` concurrent threads sharing one Comm.
/// If any rank throws, aborts the communicator, joins everyone, and
/// rethrows the first exception.
void run_ranks(int size, const std::function<void(int, Comm&)>& fn);

}  // namespace ctile::mpisim
