// Cooperative event-driven rank scheduler: the engine behind mpisim's
// event backend (DESIGN.md §11).
//
// Every rank becomes a stackful fiber (ucontext) that runs until it hits
// a blocking point — a receive with no matching deliverable message, a
// barrier, a modelled transfer occupying the CPU — and then yields to a
// single-threaded scheduler.  The scheduler picks the next runnable
// fiber with a seed-controlled SplitMix64 draw, so the interleaving is
// (a) adversarially shuffled, like real rank timing, and (b) exactly
// reproducible from the seed.  1k–16k-rank meshes run in one OS thread:
// rank state is a fiber stack (mmap'd, lazily committed, guard-paged),
// not an OS thread.
//
// Time is virtual.  The scheduler owns a simulated clock that only
// advances when no fiber is runnable: it jumps to the earliest pending
// deadline (a message's modelled delivery time, a sleeping sender's
// drain time) and wakes everything due.  A fiber that polls a
// non-blocking primitive (test/probe) charges a fixed quantum per failed
// poll — busy-waiting burns simulated CPU like it burns a real one —
// which also guarantees poll loops make progress instead of wedging the
// virtual clock.
//
// Determinism contract: given the same seed, the same spawned programs
// and the same virtual-time costs, the scheduler produces the same
// interleaving, the same per-channel message order, and therefore
// bitwise-identical numerics.  Different seeds may produce different
// interleavings but must still produce identical numerics for any
// correct program — the property the event tests assert, with the
// thread-per-rank backend kept as the race-detection oracle.
//
// If no fiber is runnable and no deadline is pending while fibers are
// still blocked, the program has deadlocked.  The scheduler calls the
// stall handler (mpisim installs "abort the communicator", which wakes
// every blocked fiber into an Error throw); if even that unblocks
// nothing, run() throws.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "support/checked_int.hpp"
#include "support/rng.hpp"

namespace ctile::mpisim {

struct Fiber;  // defined in event_scheduler.cpp (holds the ucontext)

/// Queue of fibers blocked on one condition (a mailbox, a barrier).
/// Owned by the waiting side (e.g. Comm's Mailbox); the scheduler mutates
/// it through wait/notify.  Plain struct: in the single-threaded event
/// backend no lock is ever needed around it.
struct WaitList {
  std::vector<Fiber*> fibers;
};

class EventScheduler {
 public:
  using Clock = std::chrono::steady_clock;

  /// `seed` drives the interleaving policy; `stack_bytes` is the fiber
  /// stack size (mmap'd with a low guard page; lazily committed, so
  /// thousands of mostly-idle ranks stay cheap in RSS).
  explicit EventScheduler(u64 seed, std::size_t stack_bytes = 256 * 1024);
  ~EventScheduler();

  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Create a fiber running `fn`.  `fn` must not let exceptions escape
  /// (wrap rank bodies in try/catch, as run_ranks does); an escaped
  /// exception is stashed and rethrown by run() after everything stops.
  void spawn(std::function<void()> fn);

  /// Drive all fibers to completion on the calling thread.  Throws Error
  /// on an unrecoverable stall (deadlock the stall handler could not
  /// break) and rethrows the first exception that escaped a fiber.
  void run();

  /// Invoked (once per stall) when no fiber is runnable and no virtual
  /// deadline is pending but blocked fibers remain — i.e. deadlock.  The
  /// handler's job is to make the blocked fibers runnable again (mpisim
  /// aborts the communicator so they throw and unwind).
  void set_stall_handler(std::function<void()> handler) {
    stall_handler_ = std::move(handler);
  }

  /// Current virtual time.  Starts one (virtual) second past the clock
  /// epoch so a computed deadline can never collide with the epoch
  /// sentinel mpisim uses for "deliverable immediately".
  Clock::time_point now() const { return now_; }

  /// --- Fiber-context blocking points (must be called from inside a
  /// fiber spawned on this scheduler) ---

  /// Occupy the calling fiber until virtual time `t` (modelled CPU time:
  /// a blocking send's wire occupation, a simulated compute phase).
  void sleep_until(Clock::time_point t);

  /// Block until notify_all(wl) wakes this fiber.
  void wait(WaitList& wl);

  /// Block until notify_all(wl) or virtual time `t`, whichever first.
  void wait_until(WaitList& wl, Clock::time_point t);

  /// Reschedule after a failed non-blocking poll (test/probe): charges
  /// kPollQuantum of virtual time and lets every other runnable fiber go
  /// first, so polling loops observe progress (and abort) instead of
  /// spinning the cooperative scheduler forever.
  void poll_yield();

  /// Make every fiber in `wl` runnable (callable from fiber or scheduler
  /// context; never switches).
  void notify_all(WaitList& wl);

  /// True iff the caller is running inside one of this scheduler's
  /// fibers (blocking points assert this).
  bool in_fiber() const;

  /// The scheduler driving the calling fiber, or nullptr outside fibers.
  static EventScheduler* current();

  /// Total fiber→scheduler context switches (progress/cost metric for
  /// benches; also a cheap determinism witness: same seed → same count).
  i64 switches() const { return switches_; }

  /// Virtual time charged per failed non-blocking poll.
  static constexpr std::chrono::nanoseconds kPollQuantum{1000};

 private:
  friend struct Fiber;

  Fiber* current_fiber_ = nullptr;
  std::unique_ptr<Fiber> main_ctx_;  ///< the scheduler loop's own context
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Fiber*> runnable_;
  std::vector<Fiber*> sleeping_;  // has_deadline fibers (incl. timed waits)
  std::function<void()> stall_handler_;
  std::exception_ptr fiber_error_;
  Rng rng_;
  std::size_t stack_bytes_;
  Clock::time_point now_;
  i64 switches_ = 0;
  int live_ = 0;
  bool running_ = false;

  /// Switch from the scheduler loop into `f`; returns when `f` yields.
  void enter(Fiber* f);
  /// Switch from the current fiber back to the scheduler loop.
  void yield_to_scheduler();
  /// Block the current fiber (state must already be recorded) and yield.
  void block_current();
  /// Advance the virtual clock to the earliest pending deadline and wake
  /// the fibers that are due.  Returns false if nothing was pending.
  bool advance_clock();
  /// Unmap a finished fiber's stack (called from the scheduler loop, so
  /// RSS stays bounded while thousands of ranks retire).
  void release_stack(Fiber* f);
};

}  // namespace ctile::mpisim
