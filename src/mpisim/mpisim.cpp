#include "mpisim/mpisim.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

namespace ctile::mpisim {

namespace {

/// FNV-1a over the payload bytes — the per-message digest recorded in
/// channel traces.  Bitwise: two payloads hash equal iff every double is
/// bit-identical (including -0.0 vs 0.0 and NaN payloads).
u64 payload_digest(const std::vector<double>& data) {
  u64 h = 14695981039346656037ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t bytes = data.size() * sizeof(double);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  // Fold in the length so an empty payload and a missing message differ.
  h ^= static_cast<u64>(data.size());
  h *= 1099511628211ULL;
  return h;
}

}  // namespace

Backend resolve_backend(Backend requested) {
  if (requested != Backend::kAuto) return requested;
  // Read-only env probe; nothing in this process calls setenv().
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("CTILE_MPISIM_BACKEND");
  if (env == nullptr) return Backend::kThread;
  const std::string value(env);
  if (value == "event") return Backend::kEvent;
  if (value.empty() || value == "thread") return Backend::kThread;
  throw Error("mpisim: unknown CTILE_MPISIM_BACKEND value '" + value +
              "' (expected 'thread' or 'event')");
}

Comm::Comm(int size, CommConfig config) : config_(config) {
  CTILE_ASSERT(size > 0);
  boxes_.reserve(static_cast<std::size_t>(size));
  pools_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    pools_.push_back(std::make_unique<BufferPool>());
  }
}

void Comm::attach_scheduler(EventScheduler* sched) {
  CTILE_ASSERT_MSG(sched == nullptr || sched_ == nullptr,
                   "Comm already driven by an event scheduler");
  sched_ = sched;
}

Comm::Clock::time_point Comm::now() const {
  return sched_ != nullptr ? sched_->now() : Clock::now();
}

void Comm::occupy_until(Clock::time_point t) {
  if (sched_ != nullptr) {
    sched_->sleep_until(t);
  } else {
    std::this_thread::sleep_until(t);
  }
}

void Comm::box_wait(Mailbox& box, std::unique_lock<std::mutex>& lock) {
  if (sched_ != nullptr) {
    // Single-threaded event backend: nothing can race between the unlock
    // and the fiber parking itself on the wait list (the switch happens
    // inside wait()).
    lock.unlock();
    sched_->wait(box.waiters);
    lock.lock();
  } else {
    box.cv.wait(lock);
  }
}

void Comm::box_wait_until(Mailbox& box, std::unique_lock<std::mutex>& lock,
                          Clock::time_point t) {
  if (sched_ != nullptr) {
    lock.unlock();
    sched_->wait_until(box.waiters, t);
    lock.lock();
  } else {
    box.cv.wait_until(lock, t);
  }
}

void Comm::box_notify(Mailbox& box) {
  if (sched_ != nullptr) {
    sched_->notify_all(box.waiters);
  } else {
    box.cv.notify_all();
  }
}

void Comm::barrier_wait(std::unique_lock<std::mutex>& lock) {
  if (sched_ != nullptr) {
    lock.unlock();
    sched_->wait(barrier_waiters_);
    lock.lock();
  } else {
    barrier_cv_.wait(lock);
  }
}

void Comm::barrier_notify() {
  if (sched_ != nullptr) {
    sched_->notify_all(barrier_waiters_);
  } else {
    barrier_cv_.notify_all();
  }
}

Comm::Clock::time_point Comm::deadline(std::size_t doubles) const {
  if (!config_.latency.enabled()) return Clock::time_point{};
  const auto cost = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.latency.transfer_s(doubles)));
  return now() + cost;
}

void Comm::log_event(TraceEvent::Kind kind, int src, int dst, i64 tag) {
  if (!config_.trace) return;
  std::lock_guard<std::mutex> lock(stats_mu_);
  events_.push_back(TraceEvent{kind, src, dst, tag});
}

void Comm::enqueue(int dst, Message message) {
  const i64 payload = static_cast<i64>(message.data.size());
  const ChannelKey key{message.src, dst, message.tag};
  const u64 digest = config_.trace ? payload_digest(message.data) : 0;
  // The send is logged before the push: once the message is in the
  // mailbox a racing receiver may consume (and log) it, and the log
  // must read send-then-recv for every message.
  log_event(TraceEvent::Kind::kSend, message.src, dst, message.tag);
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(message));
  }
  // Counters are bumped only after the message exists in the mailbox
  // (never over-counting in-flight traffic); see the stats contract in
  // the header — readers synchronize with a barrier before reading.
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++messages_sent_;
    doubles_sent_ += payload;
    if (config_.trace) traces_[key].push_back(digest);
  }
  box_notify(box);
}

void Comm::send(int src, int dst, i64 tag, std::vector<double> data) {
  CTILE_ASSERT(src >= 0 && src < size());
  CTILE_ASSERT(dst >= 0 && dst < size());
  if (aborted_.load()) {
    throw Error("mpisim: send from rank " + std::to_string(src) +
                " on an aborted communicator");
  }
  const auto ready_at = deadline(data.size());
  enqueue(dst, Message{src, tag, std::move(data), ready_at});
  if (ready_at != Clock::time_point{}) {
    // Blocking schedule: the sending CPU is occupied until the wire
    // drains (the simulator's kBlocking charge of bytes / bandwidth on
    // the critical path).  The message becomes deliverable at the same
    // instant the sender resumes.  Virtual time under the event backend.
    occupy_until(ready_at);
  }
}

Request Comm::isend(int src, int dst, i64 tag, std::vector<double> data) {
  CTILE_ASSERT(src >= 0 && src < size());
  CTILE_ASSERT(dst >= 0 && dst < size());
  if (aborted_.load()) {
    throw Error("mpisim: isend from rank " + std::to_string(src) +
                " on an aborted communicator");
  }
  const std::size_t doubles = data.size();
  // Eager (buffered) protocol: stage into a transit buffer owned by the
  // destination's pool, so the receive side can hand it straight back
  // after unpacking and both pools stay locally balanced.
  std::vector<double> transit = acquire_buffer(dst, doubles);
  std::copy(data.begin(), data.end(), transit.begin());
  const auto ready_at = deadline(doubles);
  enqueue(dst, Message{src, tag, std::move(transit), ready_at});
  // The caller's buffer completed its job the moment the copy was
  // staged: recycle it into the *sender's* pool immediately, so a rank
  // that only sends still reuses buffers instead of allocating fresh
  // ones every tile.
  release_buffer(src, std::move(data));
  Request req;
  req.kind = Request::Kind::kSend;
  req.owner = src;
  req.peer = dst;
  req.tag = tag;
  req.ready_at = ready_at;
  return req;
}

Request Comm::irecv(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  CTILE_ASSERT(src >= 0 && src < size());
  Request req;
  req.kind = Request::Kind::kRecv;
  req.owner = dst;
  req.peer = src;
  req.tag = tag;
  return req;
}

bool Comm::test(Request& req) {
  if (req.done || req.kind == Request::Kind::kNone) {
    req.done = true;
    return true;
  }
  if (req.kind == Request::Kind::kSend) {
    if (req.ready_at == Clock::time_point{} || req.ready_at <= now()) {
      req.done = true;
      return true;
    }
    // Failed poll: under the event backend charge a quantum and let the
    // virtual clock progress toward the drain deadline.
    if (sched_ != nullptr) sched_->poll_yield();
    return false;
  }
  // Receive: consume the first FIFO match once it is deliverable.
  {
    Mailbox& box = *boxes_[static_cast<std::size_t>(req.owner)];
    std::lock_guard<std::mutex> lock(box.mu);
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.src == req.peer && m.tag == req.tag;
                           });
    if (it != box.queue.end() && deliverable(*it)) {
      req.payload = std::move(it->data);
      box.queue.erase(it);
      req.done = true;
      // Logged while the mailbox lock is still held: the consume's log
      // position is its linearization point (box.mu -> stats_mu_ nests
      // acyclically; enqueue never holds both).
      log_event(TraceEvent::Kind::kRecv, req.peer, req.owner, req.tag);
      return true;
    }
    // The receive cannot complete right now.  A polling rank must
    // observe a dead communicator exactly like a blocking recv() does —
    // before this check a test() loop livelocked forever when a peer
    // died (ISSUE 6 satellite 1).
    if (aborted_.load()) {
      throw Error("mpisim: communicator aborted while rank " +
                  std::to_string(req.owner) + " tested a receive from (src=" +
                  std::to_string(req.peer) + ", tag=" +
                  std::to_string(req.tag) + ")");
    }
  }
  if (sched_ != nullptr) sched_->poll_yield();
  return false;
}

std::vector<double> Comm::wait(Request& req) {
  if (req.done || req.kind == Request::Kind::kNone) {
    req.done = true;
    return std::move(req.payload);
  }
  if (req.kind == Request::Kind::kSend) {
    // Model the NIC draining the wire; the payload buffer was already
    // recycled at initiation, so completion is purely a local time event
    // — it succeeds even on an aborted communicator.
    if (req.ready_at != Clock::time_point{}) {
      occupy_until(req.ready_at);
    }
    req.done = true;
    return {};
  }
  req.payload = recv(req.owner, req.peer, req.tag);
  req.done = true;
  return std::move(req.payload);
}

void Comm::wait_all(std::vector<Request>& reqs) {
  for (Request& req : reqs) {
    if (req.done) continue;
    if (req.kind == Request::Kind::kRecv) {
      // Keep the payload stashed so a caller that cares can drain it.
      req.payload = recv(req.owner, req.peer, req.tag);
      req.done = true;
    } else {
      (void)wait(req);
    }
  }
}

std::vector<double> Comm::recv(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      // FIFO: always take the *first* match, even when the latency model
      // says it is still in flight — waiting for a later match would
      // reorder the channel.  Wake at its delivery deadline.
      if (!deliverable(*it)) {
        const auto ready_at = it->ready_at;
        if (aborted_.load()) {
          throw Error("mpisim: communicator aborted while rank " +
                      std::to_string(dst) + " waited for (src=" +
                      std::to_string(src) + ", tag=" + std::to_string(tag) +
                      ")");
        }
        box_wait_until(box, lock, ready_at);
        continue;
      }
      std::vector<double> data = std::move(it->data);
      box.queue.erase(it);
      log_event(TraceEvent::Kind::kRecv, src, dst, tag);
      return data;
    }
    if (aborted_.load()) {
      throw Error("mpisim: communicator aborted while rank " +
                  std::to_string(dst) + " waited for (src=" +
                  std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    }
    box_wait(box, lock);
  }
}

bool Comm::probe(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  CTILE_ASSERT(src >= 0 && src < size());
  bool ready = false;
  {
    Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> lock(box.mu);
    // Mirror recv()'s matching rule exactly: the FIRST FIFO match must
    // be deliverable.  Matching *any* deliverable message (the old
    // std::any_of) lied under the latency model — probe() said true
    // while recv() would block on an earlier in-flight message on the
    // same channel (ISSUE 6 satellite 2).
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    ready = it != box.queue.end() && deliverable(*it);
  }
  if (!ready && sched_ != nullptr) sched_->poll_yield();
  return ready;
}

void Comm::barrier(int rank) {
  CTILE_ASSERT(rank >= 0 && rank < size());
  std::unique_lock<std::mutex> lock(barrier_mu_);
  // Entering a barrier on a dead communicator can never succeed — and
  // the LAST-arriving rank must not "complete" a barrier instance its
  // peers are about to throw out of (ISSUE 6 satellite 3): check before
  // counting ourselves in.
  if (aborted_.load()) {
    throw Error("mpisim: barrier entered by rank " + std::to_string(rank) +
                " on an aborted communicator");
  }
  i64 my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_notify();
    return;
  }
  while (barrier_generation_ == my_generation && !aborted_.load()) {
    barrier_wait(lock);
  }
  if (aborted_.load() && barrier_generation_ == my_generation) {
    throw Error("mpisim: communicator aborted during barrier");
  }
}

void Comm::abort() {
  aborted_.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box_notify(*box);
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_notify();
  }
}

std::vector<double> Comm::acquire_buffer(int rank, std::size_t size) {
  CTILE_ASSERT(rank >= 0 && rank < this->size());
  BufferPool& pool = *pools_[static_cast<std::size_t>(rank)];
  std::vector<double> buf;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    // Prefer a pooled buffer whose capacity already covers the request:
    // that is a true reuse (the resize below cannot reallocate).  The
    // old code took whatever was on top and counted it as a reuse even
    // when resize immediately reallocated (ISSUE 6 satellite 3).
    auto it = std::find_if(pool.free.begin(), pool.free.end(),
                           [&](const std::vector<double>& b) {
                             return b.capacity() >= size;
                           });
    if (it != pool.free.end()) {
      buf = std::move(*it);
      *it = std::move(pool.free.back());
      pool.free.pop_back();
      reused = true;
    } else if (!pool.free.empty()) {
      // No pooled buffer is big enough: still take one (its heap block
      // is about to be replaced either way, and leaving it pooled would
      // just strand small buffers), but do NOT count a reuse — and
      // clear() first so the reallocating resize does not waste time
      // copying stale contents the caller will overwrite anyway.
      buf = std::move(pool.free.back());
      pool.free.pop_back();
      buf.clear();
    }
  }
  if (reused) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++pool_reuses_;
  }
  buf.resize(size);
  return buf;
}

void Comm::release_buffer(int rank, std::vector<double>&& buf) {
  CTILE_ASSERT(rank >= 0 && rank < this->size());
  if (buf.capacity() == 0) return;
  BufferPool& pool = *pools_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.free.size() >= kMaxPooledBuffers) return;  // bound: just free
  pool.free.push_back(std::move(buf));
  pool.high_water = std::max(pool.high_water, pool.free.size());
}

i64 Comm::pool_reuses() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return pool_reuses_;
}

i64 Comm::pool_high_water() const {
  std::size_t hwm = 0;
  for (const auto& pool : pools_) {
    std::lock_guard<std::mutex> lock(pool->mu);
    hwm = std::max(hwm, pool->high_water);
  }
  return static_cast<i64>(hwm);
}

Comm::ChannelTraces Comm::channel_traces() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return traces_;
}

std::vector<Comm::TraceEvent> Comm::event_log() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return events_;
}

i64 Comm::messages_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return messages_sent_;
}

i64 Comm::doubles_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return doubles_sent_;
}

void Comm::advance(int rank, double seconds) {
  CTILE_ASSERT(rank >= 0 && rank < size());
  if (seconds <= 0.0) return;
  const auto cost = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  occupy_until(now() + cost);
}

namespace {

void run_ranks_event(int size, const std::function<void(int, Comm&)>& fn,
                     const CommConfig& config) {
  // Scheduler outlives the communicator: Comm holds a raw pointer to it.
  EventScheduler sched(config.seed, config.fiber_stack_bytes);
  Comm comm(size, config);
  comm.attach_scheduler(&sched);
  // Single-threaded: no err_mu needed around first_error.
  std::exception_ptr first_error;
  for (int r = 0; r < size; ++r) {
    sched.spawn([&, r] {
      try {
        fn(r, comm);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        comm.abort();
      }
    });
  }
  sched.set_stall_handler([&] {
    // All ranks blocked, no virtual deadline pending: true deadlock.
    // Abort the communicator so every waiter wakes into an Error and
    // unwinds, instead of hanging the process the way the thread
    // backend would.
    if (!first_error) {
      first_error = std::make_exception_ptr(
          Error("mpisim: deadlock detected by the event scheduler (all "
                "ranks blocked with no pending message deadline)"));
    }
    comm.abort();
  });
  sched.run();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void run_ranks(int size, const std::function<void(int, Comm&)>& fn,
               CommConfig config) {
  if (resolve_backend(config.backend) == Backend::kEvent) {
    run_ranks_event(size, fn, config);
    return;
  }
  Comm comm(size, config);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        comm.abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ctile::mpisim
