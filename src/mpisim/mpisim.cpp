#include "mpisim/mpisim.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

namespace ctile::mpisim {

Comm::Comm(int size) {
  CTILE_ASSERT(size > 0);
  boxes_.reserve(static_cast<std::size_t>(size));
  pools_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    pools_.push_back(std::make_unique<BufferPool>());
  }
}

void Comm::send(int src, int dst, i64 tag, std::vector<double> data) {
  CTILE_ASSERT(src >= 0 && src < size());
  CTILE_ASSERT(dst >= 0 && dst < size());
  if (aborted_.load()) {
    throw Error("mpisim: send from rank " + std::to_string(src) +
                " on an aborted communicator");
  }
  const i64 payload = static_cast<i64>(data.size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(Message{src, tag, std::move(data)});
  }
  // Counters are bumped only after the message exists in the mailbox
  // (never over-counting in-flight traffic); see the stats contract in
  // the header — readers synchronize with a barrier before reading.
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++messages_sent_;
    doubles_sent_ += payload;
  }
  box.cv.notify_all();
}

std::vector<double> Comm::recv(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      std::vector<double> data = std::move(it->data);
      box.queue.erase(it);
      return data;
    }
    if (aborted_.load()) {
      throw Error("mpisim: communicator aborted while rank " +
                  std::to_string(dst) + " waited for (src=" +
                  std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    }
    box.cv.wait(lock);
  }
}

bool Comm::probe(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  CTILE_ASSERT(src >= 0 && src < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  return std::any_of(box.queue.begin(), box.queue.end(),
                     [&](const Message& m) {
                       return m.src == src && m.tag == tag;
                     });
}

void Comm::barrier(int rank) {
  CTILE_ASSERT(rank >= 0 && rank < size());
  std::unique_lock<std::mutex> lock(barrier_mu_);
  i64 my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != my_generation || aborted_.load();
  });
  if (aborted_.load() && barrier_generation_ == my_generation) {
    throw Error("mpisim: communicator aborted during barrier");
  }
}

void Comm::abort() {
  aborted_.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

std::vector<double> Comm::acquire_buffer(int rank, std::size_t size) {
  CTILE_ASSERT(rank >= 0 && rank < this->size());
  BufferPool& pool = *pools_[static_cast<std::size_t>(rank)];
  std::vector<double> buf;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.free.empty()) {
      buf = std::move(pool.free.back());
      pool.free.pop_back();
      reused = true;
    }
  }
  if (reused) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++pool_reuses_;
  }
  buf.resize(size);
  return buf;
}

void Comm::release_buffer(int rank, std::vector<double>&& buf) {
  CTILE_ASSERT(rank >= 0 && rank < this->size());
  if (buf.capacity() == 0) return;
  BufferPool& pool = *pools_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.free.size() >= kMaxPooledBuffers) return;  // bound: just free
  pool.free.push_back(std::move(buf));
}

i64 Comm::pool_reuses() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return pool_reuses_;
}

i64 Comm::messages_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return messages_sent_;
}

i64 Comm::doubles_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return doubles_sent_;
}

void run_ranks(int size, const std::function<void(int, Comm&)>& fn) {
  Comm comm(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        comm.abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ctile::mpisim
