#include "mpisim/mpisim.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

namespace ctile::mpisim {

Comm::Comm(int size, CommConfig config) : config_(config) {
  CTILE_ASSERT(size > 0);
  boxes_.reserve(static_cast<std::size_t>(size));
  pools_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    pools_.push_back(std::make_unique<BufferPool>());
  }
}

Comm::Clock::time_point Comm::deadline(std::size_t doubles) const {
  if (!config_.latency.enabled()) return Clock::time_point{};
  const auto cost = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.latency.transfer_s(doubles)));
  return Clock::now() + cost;
}

void Comm::enqueue(int dst, Message message) {
  const i64 payload = static_cast<i64>(message.data.size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(message));
  }
  // Counters are bumped only after the message exists in the mailbox
  // (never over-counting in-flight traffic); see the stats contract in
  // the header — readers synchronize with a barrier before reading.
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++messages_sent_;
    doubles_sent_ += payload;
  }
  box.cv.notify_all();
}

void Comm::send(int src, int dst, i64 tag, std::vector<double> data) {
  CTILE_ASSERT(src >= 0 && src < size());
  CTILE_ASSERT(dst >= 0 && dst < size());
  if (aborted_.load()) {
    throw Error("mpisim: send from rank " + std::to_string(src) +
                " on an aborted communicator");
  }
  const auto ready_at = deadline(data.size());
  enqueue(dst, Message{src, tag, std::move(data), ready_at});
  if (ready_at != Clock::time_point{}) {
    // Blocking schedule: the sending CPU is occupied until the wire
    // drains (the simulator's kBlocking charge of bytes / bandwidth on
    // the critical path).  The message becomes deliverable at the same
    // instant the sender resumes.
    std::this_thread::sleep_until(ready_at);
  }
}

Request Comm::isend(int src, int dst, i64 tag, std::vector<double> data) {
  CTILE_ASSERT(src >= 0 && src < size());
  CTILE_ASSERT(dst >= 0 && dst < size());
  if (aborted_.load()) {
    throw Error("mpisim: isend from rank " + std::to_string(src) +
                " on an aborted communicator");
  }
  const std::size_t doubles = data.size();
  // Eager (buffered) protocol: stage into a transit buffer owned by the
  // destination's pool, so the receive side can hand it straight back
  // after unpacking and both pools stay locally balanced.
  std::vector<double> transit = acquire_buffer(dst, doubles);
  std::copy(data.begin(), data.end(), transit.begin());
  const auto ready_at = deadline(doubles);
  enqueue(dst, Message{src, tag, std::move(transit), ready_at});
  // The caller's buffer completed its job the moment the copy was
  // staged: recycle it into the *sender's* pool immediately, so a rank
  // that only sends still reuses buffers instead of allocating fresh
  // ones every tile.
  release_buffer(src, std::move(data));
  Request req;
  req.kind = Request::Kind::kSend;
  req.owner = src;
  req.peer = dst;
  req.tag = tag;
  req.ready_at = ready_at;
  return req;
}

Request Comm::irecv(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  CTILE_ASSERT(src >= 0 && src < size());
  Request req;
  req.kind = Request::Kind::kRecv;
  req.owner = dst;
  req.peer = src;
  req.tag = tag;
  return req;
}

bool Comm::test(Request& req) {
  if (req.done || req.kind == Request::Kind::kNone) {
    req.done = true;
    return true;
  }
  if (req.kind == Request::Kind::kSend) {
    if (req.ready_at == Clock::time_point{} || req.ready_at <= Clock::now()) {
      req.done = true;
    }
    return req.done;
  }
  // Receive: consume the first deliverable FIFO match, if any.
  Mailbox& box = *boxes_[static_cast<std::size_t>(req.owner)];
  std::lock_guard<std::mutex> lock(box.mu);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [&](const Message& m) {
                           return m.src == req.peer && m.tag == req.tag;
                         });
  if (it == box.queue.end() || !deliverable(*it)) return false;
  req.payload = std::move(it->data);
  box.queue.erase(it);
  req.done = true;
  return true;
}

std::vector<double> Comm::wait(Request& req) {
  if (req.done || req.kind == Request::Kind::kNone) {
    req.done = true;
    return std::move(req.payload);
  }
  if (req.kind == Request::Kind::kSend) {
    // Model the NIC draining the wire; the payload buffer was already
    // recycled at initiation, so completion is purely a time event.
    if (req.ready_at != Clock::time_point{}) {
      std::this_thread::sleep_until(req.ready_at);
    }
    req.done = true;
    return {};
  }
  req.payload = recv(req.owner, req.peer, req.tag);
  req.done = true;
  return std::move(req.payload);
}

void Comm::wait_all(std::vector<Request>& reqs) {
  for (Request& req : reqs) {
    if (req.done) continue;
    if (req.kind == Request::Kind::kRecv) {
      // Keep the payload stashed so a caller that cares can drain it.
      req.payload = recv(req.owner, req.peer, req.tag);
      req.done = true;
    } else {
      (void)wait(req);
    }
  }
}

std::vector<double> Comm::recv(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      // FIFO: always take the *first* match, even when the latency model
      // says it is still in flight — waiting for a later match would
      // reorder the channel.  Wake at its delivery deadline.
      if (!deliverable(*it)) {
        const auto ready_at = it->ready_at;
        if (aborted_.load()) {
          throw Error("mpisim: communicator aborted while rank " +
                      std::to_string(dst) + " waited for (src=" +
                      std::to_string(src) + ", tag=" + std::to_string(tag) +
                      ")");
        }
        box.cv.wait_until(lock, ready_at);
        continue;
      }
      std::vector<double> data = std::move(it->data);
      box.queue.erase(it);
      return data;
    }
    if (aborted_.load()) {
      throw Error("mpisim: communicator aborted while rank " +
                  std::to_string(dst) + " waited for (src=" +
                  std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    }
    box.cv.wait(lock);
  }
}

bool Comm::probe(int dst, int src, i64 tag) {
  CTILE_ASSERT(dst >= 0 && dst < size());
  CTILE_ASSERT(src >= 0 && src < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  return std::any_of(box.queue.begin(), box.queue.end(),
                     [&](const Message& m) {
                       return m.src == src && m.tag == tag &&
                              deliverable(m);
                     });
}

void Comm::barrier(int rank) {
  CTILE_ASSERT(rank >= 0 && rank < size());
  std::unique_lock<std::mutex> lock(barrier_mu_);
  i64 my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != my_generation || aborted_.load();
  });
  if (aborted_.load() && barrier_generation_ == my_generation) {
    throw Error("mpisim: communicator aborted during barrier");
  }
}

void Comm::abort() {
  aborted_.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

std::vector<double> Comm::acquire_buffer(int rank, std::size_t size) {
  CTILE_ASSERT(rank >= 0 && rank < this->size());
  BufferPool& pool = *pools_[static_cast<std::size_t>(rank)];
  std::vector<double> buf;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.free.empty()) {
      buf = std::move(pool.free.back());
      pool.free.pop_back();
      reused = true;
    }
  }
  if (reused) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++pool_reuses_;
  }
  buf.resize(size);
  return buf;
}

void Comm::release_buffer(int rank, std::vector<double>&& buf) {
  CTILE_ASSERT(rank >= 0 && rank < this->size());
  if (buf.capacity() == 0) return;
  BufferPool& pool = *pools_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.free.size() >= kMaxPooledBuffers) return;  // bound: just free
  pool.free.push_back(std::move(buf));
  pool.high_water = std::max(pool.high_water, pool.free.size());
}

i64 Comm::pool_reuses() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return pool_reuses_;
}

i64 Comm::pool_high_water() const {
  std::size_t hwm = 0;
  for (const auto& pool : pools_) {
    std::lock_guard<std::mutex> lock(pool->mu);
    hwm = std::max(hwm, pool->high_water);
  }
  return static_cast<i64>(hwm);
}

i64 Comm::messages_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return messages_sent_;
}

i64 Comm::doubles_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return doubles_sent_;
}

void run_ranks(int size, const std::function<void(int, Comm&)>& fn,
               CommConfig config) {
  Comm comm(size, config);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        comm.abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ctile::mpisim
