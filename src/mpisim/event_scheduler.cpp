#include "mpisim/event_scheduler.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "support/error.hpp"

// AddressSanitizer needs to be told about stack switches, or its
// fake-stack bookkeeping misattributes frames after a swapcontext (the
// ASan CI job runs the whole suite, event backend included).  The
// annotations are no-ops everywhere else.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CTILE_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define CTILE_ASAN_FIBERS 1
#endif

#if defined(CTILE_ASAN_FIBERS)
#include <pthread.h>
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

namespace ctile::mpisim {

namespace {

thread_local EventScheduler* g_current_scheduler = nullptr;

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

struct Fiber {
  enum class State { kRunnable, kBlocked, kDone };

  EventScheduler* sched = nullptr;
  std::function<void()> fn;
  ucontext_t ctx{};
  void* map_base = nullptr;      ///< mmap base (guard page lives here)
  std::size_t map_bytes = 0;     ///< full mapping, guard included
  char* stack_lo = nullptr;      ///< usable stack bottom
  std::size_t stack_bytes = 0;   ///< usable stack size
  State state = State::kRunnable;
  WaitList* wl = nullptr;        ///< wait list this fiber is parked on
  bool has_deadline = false;     ///< armed virtual-time wake-up
  bool in_sleeping = false;      ///< listed in sched->sleeping_ (lazily purged)
  EventScheduler::Clock::time_point wake_at{};
  int id = -1;
#if defined(CTILE_ASAN_FIBERS)
  void* fake_stack = nullptr;
#endif

  /// Fiber body: run fn, stash any escaped exception, leave for good.
  void run_body();
  /// Final switch back to the scheduler loop; never returns.
  [[noreturn]] void exit_to_scheduler();
};

namespace {

// ASan fiber-switch annotations.  `leaving` is the fiber giving up the
// CPU (nullptr fake-stack slot when it is exiting for good, so ASan
// frees its fake frames); `entering` describes the destination stack.
inline void asan_before_switch(Fiber* leaving, const Fiber* entering,
                               bool leaving_exits) {
#if defined(CTILE_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(
      leaving_exits ? nullptr : &leaving->fake_stack, entering->stack_lo,
      entering->stack_bytes);
#else
  (void)leaving;
  (void)entering;
  (void)leaving_exits;
#endif
}

inline void asan_after_switch(Fiber* resumed) {
#if defined(CTILE_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(resumed->fake_stack, nullptr, nullptr);
#else
  (void)resumed;
#endif
}

void fiber_entry(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32U) |
      static_cast<std::uintptr_t>(lo));
#if defined(CTILE_ASAN_FIBERS)
  // First entry: no fake stack to restore for this fiber yet.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  f->run_body();
}

}  // namespace

void Fiber::run_body() {
  try {
    fn();
  } catch (...) {
    // Rank bodies are expected to catch their own exceptions (run_ranks
    // wraps them); anything escaping to here is stashed and rethrown by
    // run() so it is never silently lost.
    if (!sched->fiber_error_) {
      sched->fiber_error_ = std::current_exception();
    }
  }
  state = State::kDone;
  exit_to_scheduler();
}

void Fiber::exit_to_scheduler() {
  asan_before_switch(this, sched->main_ctx_.get(), /*leaving_exits=*/true);
  swapcontext(&ctx, &sched->main_ctx_->ctx);
  // The scheduler never resumes a finished fiber.
  std::abort();
}

EventScheduler::EventScheduler(u64 seed, std::size_t stack_bytes)
    : rng_(seed), stack_bytes_(stack_bytes) {
  now_ = Clock::time_point{} + std::chrono::seconds(1);
  main_ctx_ = std::make_unique<Fiber>();
  main_ctx_->sched = this;
  main_ctx_->id = -1;
#if defined(CTILE_ASAN_FIBERS)
  // ASan wants the destination stack bounds on every switch, including
  // switches back into the scheduler loop, which runs on the host
  // thread's own stack.
  pthread_attr_t attr;
  CTILE_ASSERT(pthread_getattr_np(pthread_self(), &attr) == 0);
  void* addr = nullptr;
  std::size_t size = 0;
  CTILE_ASSERT(pthread_attr_getstack(&attr, &addr, &size) == 0);
  pthread_attr_destroy(&attr);
  main_ctx_->stack_lo = static_cast<char*>(addr);
  main_ctx_->stack_bytes = size;
#endif
}

EventScheduler::~EventScheduler() {
  for (auto& f : fibers_) release_stack(f.get());
}

void EventScheduler::release_stack(Fiber* f) {
  if (f->map_base != nullptr) {
    munmap(f->map_base, f->map_bytes);
    f->map_base = nullptr;
    f->stack_lo = nullptr;
  }
  f->fn = nullptr;
}

void EventScheduler::spawn(std::function<void()> fn) {
  CTILE_ASSERT_MSG(!running_, "spawn while the scheduler is running");
  auto f = std::make_unique<Fiber>();
  f->sched = this;
  f->fn = std::move(fn);
  f->id = static_cast<int>(fibers_.size());

  const std::size_t page = page_size();
  const std::size_t usable = ((stack_bytes_ + page - 1) / page) * page;
  f->map_bytes = usable + page;
  void* base = mmap(nullptr, f->map_bytes, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_STACK,
                    -1, 0);
  CTILE_ASSERT_MSG(base != MAP_FAILED, "fiber stack mmap failed");
  // Guard page at the low end: stack overflow faults instead of
  // scribbling over the neighbouring fiber's stack.
  CTILE_ASSERT(mprotect(base, page, PROT_NONE) == 0);
  f->map_base = base;
  f->stack_lo = static_cast<char*>(base) + page;
  f->stack_bytes = usable;

  CTILE_ASSERT(getcontext(&f->ctx) == 0);
  f->ctx.uc_stack.ss_sp = f->stack_lo;
  f->ctx.uc_stack.ss_size = f->stack_bytes;
  f->ctx.uc_link = nullptr;  // fibers exit via exit_to_scheduler, never return
  const auto p = reinterpret_cast<std::uintptr_t>(f.get());
  makecontext(&f->ctx, reinterpret_cast<void (*)()>(fiber_entry), 2,
              static_cast<unsigned>(p >> 32U),
              static_cast<unsigned>(p & 0xffffffffU));

  runnable_.push_back(f.get());
  ++live_;
  fibers_.push_back(std::move(f));
}

void EventScheduler::run() {
  CTILE_ASSERT_MSG(!running_, "EventScheduler::run is not reentrant");
  running_ = true;
  EventScheduler* const prev = g_current_scheduler;
  g_current_scheduler = this;
  while (live_ > 0) {
    if (!runnable_.empty()) {
      // Seeded interleaving policy: any runnable fiber may go next, the
      // draw is a pure function of the seed.  Swap-remove keeps the pick
      // O(1) at thousands of runnable ranks.
      const auto i = static_cast<std::size_t>(
          rng_.uniform(0, static_cast<i64>(runnable_.size()) - 1));
      Fiber* f = runnable_[i];
      runnable_[i] = runnable_.back();
      runnable_.pop_back();
      enter(f);
      if (f->state == Fiber::State::kDone) {
        --live_;
        release_stack(f);
      }
      continue;
    }
    if (advance_clock()) continue;
    // No fiber runnable, no deadline pending, fibers still blocked:
    // deadlock.  Give the stall handler one chance to break it (mpisim
    // aborts the communicator, waking every waiter into an Error).
    if (stall_handler_) stall_handler_();
    if (runnable_.empty() && !advance_clock()) {
      running_ = false;
      g_current_scheduler = prev;
      throw Error(
          "mpisim event scheduler: deadlock — " + std::to_string(live_) +
          " fiber(s) blocked with no runnable fiber and no pending "
          "virtual-time deadline");
    }
  }
  running_ = false;
  g_current_scheduler = prev;
  if (fiber_error_) {
    std::exception_ptr e = fiber_error_;
    fiber_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void EventScheduler::enter(Fiber* f) {
  current_fiber_ = f;
  ++switches_;
  asan_before_switch(main_ctx_.get(), f, /*leaving_exits=*/false);
  CTILE_ASSERT(swapcontext(&main_ctx_->ctx, &f->ctx) == 0);
  asan_after_switch(main_ctx_.get());
  current_fiber_ = nullptr;
}

void EventScheduler::yield_to_scheduler() {
  Fiber* f = current_fiber_;
  CTILE_ASSERT(f != nullptr);
  asan_before_switch(f, main_ctx_.get(), /*leaving_exits=*/false);
  CTILE_ASSERT(swapcontext(&f->ctx, &main_ctx_->ctx) == 0);
  asan_after_switch(f);
}

void EventScheduler::block_current() { yield_to_scheduler(); }

bool EventScheduler::advance_clock() {
  // Purge entries whose deadline was disarmed by a notify (lazy
  // deletion keeps notify_all O(waiters), not O(sleepers)).
  std::size_t kept = 0;
  for (Fiber* f : sleeping_) {
    if (f->has_deadline) {
      sleeping_[kept++] = f;
    } else {
      f->in_sleeping = false;
    }
  }
  sleeping_.resize(kept);
  if (sleeping_.empty()) return false;

  Clock::time_point min_t = sleeping_.front()->wake_at;
  for (Fiber* f : sleeping_) min_t = std::min(min_t, f->wake_at);
  if (min_t > now_) now_ = min_t;

  // Wake everything due, in fiber-id order so the wake sequence is a
  // pure function of program + seed.
  std::vector<Fiber*> due;
  kept = 0;
  for (Fiber* f : sleeping_) {
    if (f->wake_at <= now_) {
      due.push_back(f);
    } else {
      sleeping_[kept++] = f;
    }
  }
  sleeping_.resize(kept);
  std::sort(due.begin(), due.end(),
            [](const Fiber* a, const Fiber* b) { return a->id < b->id; });
  for (Fiber* f : due) {
    f->has_deadline = false;
    f->in_sleeping = false;
    if (f->wl != nullptr) {
      // Timed wait that ran out: leave the wait list.
      auto& fibers = f->wl->fibers;
      fibers.erase(std::remove(fibers.begin(), fibers.end(), f),
                   fibers.end());
      f->wl = nullptr;
    }
    f->state = Fiber::State::kRunnable;
    runnable_.push_back(f);
  }
  return true;
}

void EventScheduler::sleep_until(Clock::time_point t) {
  Fiber* f = current_fiber_;
  CTILE_ASSERT_MSG(f != nullptr,
                   "blocking mpisim op outside the event scheduler's fibers");
  if (t <= now_) return;
  f->state = Fiber::State::kBlocked;
  f->wl = nullptr;
  f->has_deadline = true;
  f->wake_at = t;
  if (!f->in_sleeping) {
    f->in_sleeping = true;
    sleeping_.push_back(f);
  }
  block_current();
}

void EventScheduler::wait(WaitList& wl) {
  Fiber* f = current_fiber_;
  CTILE_ASSERT_MSG(f != nullptr,
                   "blocking mpisim op outside the event scheduler's fibers");
  f->state = Fiber::State::kBlocked;
  f->wl = &wl;
  f->has_deadline = false;
  wl.fibers.push_back(f);
  block_current();
}

void EventScheduler::wait_until(WaitList& wl, Clock::time_point t) {
  Fiber* f = current_fiber_;
  CTILE_ASSERT_MSG(f != nullptr,
                   "blocking mpisim op outside the event scheduler's fibers");
  if (t <= now_) return;
  f->state = Fiber::State::kBlocked;
  f->wl = &wl;
  f->has_deadline = true;
  f->wake_at = t;
  if (!f->in_sleeping) {
    f->in_sleeping = true;
    sleeping_.push_back(f);
  }
  wl.fibers.push_back(f);
  block_current();
}

void EventScheduler::poll_yield() {
  Fiber* f = current_fiber_;
  CTILE_ASSERT_MSG(f != nullptr,
                   "poll_yield outside the event scheduler's fibers");
  // A failed poll burns simulated CPU: without this charge a test/probe
  // loop would never let the virtual clock reach the deadline it is
  // polling for.
  now_ += kPollQuantum;
  f->state = Fiber::State::kRunnable;
  runnable_.push_back(f);
  yield_to_scheduler();
}

void EventScheduler::notify_all(WaitList& wl) {
  for (Fiber* f : wl.fibers) {
    f->wl = nullptr;
    f->has_deadline = false;  // sleeping_ entry purged lazily
    f->state = Fiber::State::kRunnable;
    runnable_.push_back(f);
  }
  wl.fibers.clear();
}

bool EventScheduler::in_fiber() const { return current_fiber_ != nullptr; }

EventScheduler* EventScheduler::current() { return g_current_scheduler; }

}  // namespace ctile::mpisim
