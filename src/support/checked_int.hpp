// Overflow-checked 64-bit integer arithmetic and Euclidean helpers.
//
// All exact arithmetic in ctile (rationals, Hermite/Smith normal forms,
// Fourier-Motzkin) funnels through these helpers so that an overflow is a
// loud OverflowError rather than silent wraparound.  Intermediates use
// __int128 where that removes the possibility of overflow entirely.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "support/error.hpp"

namespace ctile {

using i64 = std::int64_t;
__extension__ typedef __int128 i128;  // GCC/Clang extension, hence the marker
using u64 = std::uint64_t;

/// Narrow an __int128 to int64, throwing OverflowError if it does not fit.
inline i64 narrow_i64(i128 v) {
  if (v > static_cast<i128>(std::numeric_limits<i64>::max()) ||
      v < static_cast<i128>(std::numeric_limits<i64>::min())) {
    throw OverflowError("value does not fit in 64 bits");
  }
  return static_cast<i64>(v);
}

/// a + b with overflow check.
inline i64 add_ck(i64 a, i64 b) {
  return narrow_i64(static_cast<i128>(a) + static_cast<i128>(b));
}

/// a - b with overflow check.
inline i64 sub_ck(i64 a, i64 b) {
  return narrow_i64(static_cast<i128>(a) - static_cast<i128>(b));
}

/// a * b with overflow check.
inline i64 mul_ck(i64 a, i64 b) {
  return narrow_i64(static_cast<i128>(a) * static_cast<i128>(b));
}

/// -a with overflow check (INT64_MIN has no 64-bit negation).
inline i64 neg_ck(i64 a) { return narrow_i64(-static_cast<i128>(a)); }

/// |a| with overflow check.
inline i64 abs_ck(i64 a) { return a < 0 ? neg_ck(a) : a; }

/// Greatest common divisor, always non-negative; gcd(0,0) == 0.
inline i64 gcd_i64(i64 a, i64 b) {
  // Work in unsigned magnitude space so INT64_MIN is handled.
  u64 x = a < 0 ? ~static_cast<u64>(a) + 1 : static_cast<u64>(a);
  u64 y = b < 0 ? ~static_cast<u64>(b) + 1 : static_cast<u64>(b);
  while (y != 0) {
    u64 t = x % y;
    x = y;
    y = t;
  }
  return narrow_i64(static_cast<i128>(x));
}

/// Least common multiple, non-negative; lcm(0,x) == 0.
inline i64 lcm_i64(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  i64 g = gcd_i64(a, b);
  return mul_ck(abs_ck(a) / g, abs_ck(b));
}

/// Floor division: largest q with q*b <= a.  b must be nonzero.
inline i64 floor_div(i64 a, i64 b) {
  CTILE_ASSERT(b != 0);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division: smallest q with q*b >= a.  b must be nonzero.
inline i64 ceil_div(i64 a, i64 b) {
  CTILE_ASSERT(b != 0);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

/// Mathematical (always non-negative) modulus: a - floor_div(a,b)*b, b > 0.
inline i64 mod_floor(i64 a, i64 b) {
  CTILE_ASSERT(b > 0);
  i64 r = a % b;
  return r < 0 ? r + b : r;
}

/// Extended gcd: returns g = gcd(a,b) >= 0 and x,y with a*x + b*y == g.
struct ExtGcd {
  i64 g;
  i64 x;
  i64 y;
};

inline ExtGcd ext_gcd(i64 a, i64 b) {
  // Iterative extended Euclid on magnitudes; fix signs at the end.
  i64 old_r = a, r = b;
  i64 old_s = 1, s = 0;
  i64 old_t = 0, t = 1;
  while (r != 0) {
    i64 q = old_r / r;  // truncated is fine: invariants hold for any q
    i64 tmp = sub_ck(old_r, mul_ck(q, r));
    old_r = r;
    r = tmp;
    tmp = sub_ck(old_s, mul_ck(q, s));
    old_s = s;
    s = tmp;
    tmp = sub_ck(old_t, mul_ck(q, t));
    old_t = t;
    t = tmp;
  }
  if (old_r < 0) {
    old_r = neg_ck(old_r);
    old_s = neg_ck(old_s);
    old_t = neg_ck(old_t);
  }
  return {old_r, old_s, old_t};
}

/// Decimal rendering of __int128 (std::to_string does not support it).
std::string to_string_i128(i128 v);

}  // namespace ctile
