#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ctile::json {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw Error("json: " + what + " at byte " + std::to_string(pos));
}

std::string type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_fail(Type have, const std::string& want) {
  throw Error("json: expected " + want + ", have " + type_name(have));
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_fail(type_, "bool");
  return bool_;
}

double Value::as_double() const {
  if (type_ != Type::kNumber) type_fail(type_, "number");
  return num_;
}

i64 Value::as_i64() const {
  if (type_ != Type::kNumber) type_fail(type_, "number");
  if (!int_exact_) {
    throw Error("json: number is not an exact 64-bit integer");
  }
  return int_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_fail(type_, "string");
  return str_;
}

const std::vector<ValuePtr>& Value::as_array() const {
  if (type_ != Type::kArray) type_fail(type_, "array");
  return arr_;
}

const std::map<std::string, ValuePtr>& Value::as_object() const {
  if (type_ != Type::kObject) type_fail(type_, "object");
  return obj_;
}

ValuePtr Value::find(const std::string& key) const {
  if (type_ != Type::kObject) type_fail(type_, "object");
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : it->second;
}

const Value& Value::get(const std::string& key) const {
  ValuePtr v = find(key);
  if (v == nullptr) throw Error("json: missing key \"" + key + "\"");
  return *v;
}

i64 Value::get_i64_or(const std::string& key, i64 fallback) const {
  ValuePtr v = find(key);
  return v == nullptr ? fallback : v->as_i64();
}

std::string Value::get_string_or(const std::string& key,
                                 const std::string& fallback) const {
  ValuePtr v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

bool Value::get_bool_or(const std::string& key, bool fallback) const {
  ValuePtr v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

class Parser {
 public:
  Parser(const std::string& text, std::size_t pos)
      : text_(text), pos_(pos) {}

  std::size_t pos() const { return pos_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  ValuePtr value() {
    skip_ws();
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return word("true", [](Value& v) {
        v.type_ = Type::kBool;
        v.bool_ = true;
      });
      case 'f': return word("false", [](Value& v) {
        v.type_ = Type::kBool;
        v.bool_ = false;
      });
      case 'n': return word("null", [](Value& v) {
        v.type_ = Type::kNull;
      });
      default: return number();
    }
  }

 private:
  char next() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  template <typename Fill>
  ValuePtr word(const char* w, Fill fill) {
    const std::size_t start = pos_;
    for (const char* p = w; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(start, std::string("invalid literal (expected ") + w + ")");
      }
      ++pos_;
    }
    auto v = std::make_shared<Value>();
    fill(*v);
    return v;
  }

  ValuePtr object() {
    expect('{');
    auto v = std::make_shared<Value>();
    v->type_ = Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail(pos_, "expected object key string");
      }
      const std::string key = parse_string();
      expect(':');
      v->obj_[key] = value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
    return v;
  }

  ValuePtr array() {
    expect('[');
    auto v = std::make_shared<Value>();
    v->type_ = Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->arr_.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
    return v;
  }

  ValuePtr string_value() {
    auto v = std::make_shared<Value>();
    v->type_ = Type::kString;
    v->str_ = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "invalid \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are out of scope for
          // tool requests and rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail(pos_, "surrogate pairs unsupported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "invalid escape");
      }
    }
    return out;
  }

  ValuePtr number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail(start, "invalid number");
    }
    const std::string lit = text_.substr(start, pos_ - start);
    auto v = std::make_shared<Value>();
    v->type_ = Type::kNumber;
    errno = 0;
    char* end = nullptr;
    v->num_ = std::strtod(lit.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "invalid number");
    if (integral) {
      errno = 0;
      const long long ll = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        v->int_ = static_cast<i64>(ll);
        v->int_exact_ = true;
      }
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_;
};

ValuePtr parse(const std::string& text) {
  Parser p(text, 0);
  ValuePtr v = p.value();
  if (!p.at_end()) {
    fail(p.pos(), "trailing content after JSON document");
  }
  return v;
}

ValuePtr parse_next(const std::string& text, std::size_t* pos) {
  CTILE_ASSERT(pos != nullptr);
  Parser p(text, *pos);
  if (p.at_end()) {
    *pos = text.size();
    return nullptr;
  }
  ValuePtr v = p.value();
  *pos = p.pos();
  return v;
}

}  // namespace ctile::json
