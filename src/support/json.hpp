// A minimal recursive-descent JSON reader for the ctile tool drivers
// (ctile_pland's request stream).  No external dependency, by project
// rule; the writer side lives in bench/bench_util (JsonReport/JsonArray).
//
// Scope is deliberately small: objects, arrays, strings (with the
// standard escapes incl. \uXXXX for BMP code points), numbers, booleans,
// null.  Numbers are held as double plus an exact i64 when the literal
// is integral and in range — tiling requests are all small integers, so
// as_i64() never silently rounds.  Malformed input throws ctile::Error
// with a byte offset.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/checked_int.hpp"
#include "support/error.hpp"

namespace ctile::json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; throw Error when the type does not match.
  bool as_bool() const;
  double as_double() const;
  /// The exact integer value; throws when the number was not written as
  /// an in-range integer literal.
  i64 as_i64() const;
  const std::string& as_string() const;
  const std::vector<ValuePtr>& as_array() const;

  /// Object lookup: get() throws on a missing key, find() returns null.
  const Value& get(const std::string& key) const;
  ValuePtr find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  const std::map<std::string, ValuePtr>& as_object() const;

  /// Convenience: the i64 (or string) at `key`, or `fallback` when the
  /// key is absent.  Type mismatches still throw.
  i64 get_i64_or(const std::string& key, i64 fallback) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

 private:
  friend class Parser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  i64 int_ = 0;
  bool int_exact_ = false;
  std::string str_;
  std::vector<ValuePtr> arr_;
  std::map<std::string, ValuePtr> obj_;
};

/// Parse one complete JSON document; trailing non-whitespace throws.
ValuePtr parse(const std::string& text);

/// Parse the first JSON value starting at text[*pos] (skipping leading
/// whitespace); advances *pos past it.  Returns nullptr at end of input.
/// This is the streaming entry ctile_pland uses to read concatenated or
/// newline-delimited request objects.
ValuePtr parse_next(const std::string& text, std::size_t* pos);

}  // namespace ctile::json
