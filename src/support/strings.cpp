#include "support/strings.hpp"

#include <cstdio>

#include "support/checked_int.hpp"

namespace ctile {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string indent_lines(const std::string& text, int spaces) {
  std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out += pad;
    out.append(text, start, end - start);
    if (end < text.size()) out += '\n';
    start = end + 1;
  }
  return out;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string to_string_i128(i128 v) {
  if (v == 0) return "0";
  bool neg = v < 0;
  // Peel digits from the magnitude; negate digit-wise to avoid overflow on
  // the minimum value.
  std::string digits;
  i128 cur = v;
  while (cur != 0) {
    int d = static_cast<int>(cur % 10);
    cur /= 10;
    if (d < 0) d = -d;
    digits.push_back(static_cast<char>('0' + d));
  }
  if (neg) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

}  // namespace ctile
