// Small string utilities used by pretty-printers and the code generator.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace ctile {

/// Join the elements of `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Indent every line of `text` by `spaces` spaces.
std::string indent_lines(const std::string& text, int spaces);

/// Render any streamable value to a string.
template <typename T>
std::string str_of(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// printf-style double formatting with fixed precision.
std::string fixed(double v, int precision);

}  // namespace ctile
