#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace ctile::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "ctile assertion failed: %s\n  at %s:%d\n", expr, file,
               line);
  if (!msg.empty()) {
    std::fprintf(stderr, "  %s\n", msg.c_str());
  }
  std::abort();
}

}  // namespace ctile::detail
