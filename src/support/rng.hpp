// Deterministic pseudo-random number generation for property tests and
// workload generators.  SplitMix64: tiny, fast, and identical on every
// platform, so test failures reproduce exactly.
#pragma once

#include <cstdint>

#include "support/checked_int.hpp"

namespace ctile {

class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  u64 next_u64() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  i64 uniform(i64 lo, i64 hi) {
    CTILE_ASSERT(lo <= hi);
    u64 span = static_cast<u64>(hi) - static_cast<u64>(lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<i64>(next_u64());
    }
    return lo + static_cast<i64>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform01() < p; }

 private:
  u64 state_;
};

}  // namespace ctile
