// Error handling primitives for the ctile library.
//
// The library throws ctile::Error for conditions a caller can provoke with
// bad input (singular tiling matrices, illegal tilings, malformed loop
// specs).  Internal invariants use CTILE_ASSERT, which is compiled in all
// build types: this is compiler infrastructure, and a silently wrong
// communication set is far worse than an abort.
#pragma once

#include <stdexcept>
#include <string>

namespace ctile {

/// Base exception for all user-provokable failures in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic overflow in exact integer/rational computation.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// A tiling transformation that violates a structural requirement
/// (singular H, dependence with negative transformed component, ...).
class LegalityError : public Error {
 public:
  explicit LegalityError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace ctile

/// Always-on assertion for internal invariants.  Aborts with location info.
#define CTILE_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ctile::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
    }                                                                   \
  } while (0)

/// Assertion with an explanatory message (any streamable expression).
#define CTILE_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ctile::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (0)
