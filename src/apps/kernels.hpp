// The paper's three evaluation programs (\S4): Gauss Successive
// Over-Relaxation, Jacobi, and ADI integration, as LoopNest + Kernel
// pairs, together with the exact tiling matrices the paper evaluates.
//
// SOR and Jacobi carry negative dependence components and are skewed
// exactly as in \S4.1/\S4.2:
//   SOR:    T = [[1,0,0],[1,1,0],[2,0,1]]
//   Jacobi: T = [[1,0,0],[1,1,0],[1,0,1]]
// The kernels always receive *current-nest* coordinates and unskew
// internally, so numeric results are directly comparable between the
// original and skewed/tiled executions.
//
// Initial conditions are deterministic smooth functions so any
// miscommunicated halo value changes results detectably.
#pragma once

#include <memory>

#include "deps/loop_nest.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

/// A runnable problem instance: nest plus matching kernel (dependence
/// column order in nest.deps is the order kernel.compute expects).
struct AppInstance {
  LoopNest nest;
  std::shared_ptr<const Kernel> kernel;
};

// ---- SOR (\S4.1): A[t,i,j] = w/4 (A[t,i-1,j] + A[t,i,j-1] +
//      A[t-1,i+1,j] + A[t-1,i,j+1]) + (1-w) A[t-1,i,j],
//      1 <= t <= M, 1 <= i,j <= N.

/// The skewed SOR instance (ready for tiling).
AppInstance make_sor(i64 m, i64 n, double w = 1.0);
/// The unskewed SOR instance (for reference runs / skewing tests).
AppInstance make_sor_original(i64 m, i64 n, double w = 1.0);

/// Paper's rectangular tiling H_r = diag(1/x, 1/y, 1/z).
MatQ sor_rect_h(i64 x, i64 y, i64 z);
/// Paper's non-rectangular tiling with rows from the tiling cone:
/// [[1/x,0,0],[0,1/y,0],[-1/z,0,1/z]].
MatQ sor_nonrect_h(i64 x, i64 y, i64 z);

// ---- Jacobi (\S4.2): A[t,i,j] = 1/5 (A[t-1,i,j] + A[t-1,i-1,j] +
//      A[t-1,i+1,j] + A[t-1,i,j-1] + A[t-1,i,j+1]),
//      1 <= t <= T, 1 <= i <= I, 1 <= j <= J.

AppInstance make_jacobi(i64 t, i64 i, i64 j);
AppInstance make_jacobi_original(i64 t, i64 i, i64 j);

MatQ jacobi_rect_h(i64 x, i64 y, i64 z);
/// [[1/x,-1/(2x),0],[0,1/y,0],[0,0,1/z]] — exercises non-unit strides
/// (c_2 = 2) and the incremental offset a_21 = 1.  Requires even y for
/// stride-compatible tiles.
MatQ jacobi_nonrect_h(i64 x, i64 y, i64 z);

// ---- ADI integration (\S4.3, Table 3): arity-2 kernel updating X and B;
//      A[i,j] is a read-only coefficient.  1 <= t <= T, 1 <= i,j <= N.
//      No skewing needed (all dependencies non-negative).

AppInstance make_adi(i64 t, i64 n);

MatQ adi_rect_h(i64 x, i64 y, i64 z);
MatQ adi_nr1_h(i64 x, i64 y, i64 z);  // [[1/x,-1/x,0],[0,1/y,0],[0,0,1/z]]
MatQ adi_nr2_h(i64 x, i64 y, i64 z);  // [[1/x,0,-1/x],[0,1/y,0],[0,0,1/z]]
MatQ adi_nr3_h(i64 x, i64 y, i64 z);  // [[1/x,-1/x,-1/x],...]: cone-parallel

// ---- 1-D heat equation (2-deep nest, beyond the paper's 3-D set; shows
//      the framework is dimension-generic): A[t,i] = a A[t-1,i-1] +
//      b A[t-1,i] + c A[t-1,i+1], skewed by T = [[1,0],[1,1]].

AppInstance make_heat(i64 t, i64 n);
AppInstance make_heat_original(i64 t, i64 n);

MatQ heat_rect_h(i64 x, i64 y);
/// [[1/x,0],[2/z,-1/z]] — row 2 parallel to the tiling-cone ray (2,-1).
MatQ heat_nonrect_h(i64 x, i64 z);

// ---- 4-D synthetic nest (unit time dependence plus three forward
//      spatial couplings): exercises 3-D processor meshes and the
//      dimension-generic code paths end to end.

AppInstance make_syn4d(i64 s0, i64 s1, i64 s2, i64 s3);

MatQ syn4d_rect_h(i64 x, i64 y, i64 z, i64 w);
/// ADI-nr1-style skewed first row in 4-D: [[1/x,-1/x,0,0],[0,1/y,0,0],...].
MatQ syn4d_nonrect_h(i64 x, i64 y, i64 z, i64 w);

/// The skewing matrices (exposed for tests and examples).
MatI sor_skew_matrix();
MatI jacobi_skew_matrix();
MatI heat_skew_matrix();

}  // namespace ctile
