#include "apps/kernels.hpp"

#include <cmath>

#include "deps/skew.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"

namespace ctile {

namespace {

// Unskews a point: j_original = T^{-1} j_current.  Identity when the
// instance is not skewed.
class UnskewBase : public Kernel {
 public:
  explicit UnskewBase(MatI t_inv) : t_inv_(std::move(t_inv)) {}

 protected:
  VecI unskew(const VecI& j) const { return mul(t_inv_, j); }

 private:
  MatI t_inv_;
};

MatI int_inverse(const MatI& t) { return to_int(inverse(to_rat(t))); }

class SorKernel final : public UnskewBase {
 public:
  SorKernel(MatI t_inv, double w) : UnskewBase(std::move(t_inv)), w_(w) {}

  int arity() const override { return 1; }

  // Dependence column order (original coordinates):
  //   0: (0,1,0)   A[t, i-1, j]
  //   1: (0,0,1)   A[t, i, j-1]
  //   2: (1,-1,0)  A[t-1, i+1, j]
  //   3: (1,0,-1)  A[t-1, i, j+1]
  //   4: (1,0,0)   A[t-1, i, j]
  void compute(const VecI&, const double* dv, double* out) const override {
    out[0] = w_ / 4.0 * (dv[0] + dv[1] + dv[2] + dv[3]) + (1.0 - w_) * dv[4];
  }

  void initial(const VecI& j, double* out) const override {
    VecI o = unskew(j);
    // Smooth deterministic boundary values over (t, i, j).
    out[0] = 1.0 + 0.01 * static_cast<double>(o[1]) +
             0.02 * static_cast<double>(o[2]) +
             0.001 * static_cast<double>(o[0]);
  }

 private:
  double w_;
};

class JacobiKernel final : public UnskewBase {
 public:
  explicit JacobiKernel(MatI t_inv) : UnskewBase(std::move(t_inv)) {}

  int arity() const override { return 1; }

  // Dependence column order (original coordinates):
  //   0: (1,0,0), 1: (1,1,0), 2: (1,-1,0), 3: (1,0,1), 4: (1,0,-1)
  void compute(const VecI&, const double* dv, double* out) const override {
    out[0] = (dv[0] + dv[1] + dv[2] + dv[3] + dv[4]) / 5.0;
  }

  void initial(const VecI& j, double* out) const override {
    VecI o = unskew(j);
    out[0] = std::sin(0.05 * static_cast<double>(o[1])) +
             std::cos(0.07 * static_cast<double>(o[2]));
  }
};

class AdiKernel final : public Kernel {
 public:
  int arity() const override { return 2; }  // (X, B)

  // Coefficient array A[i,j]: small so B stays near 2 (division-safe).
  static double coeff(i64 i, i64 j) {
    return 0.01 + 0.002 * std::sin(0.1 * static_cast<double>(i) +
                                   0.2 * static_cast<double>(j));
  }

  // Dependence column order:
  //   0: (1,0,0)  [t-1, i, j]
  //   1: (1,1,0)  [t-1, i-1, j]
  //   2: (1,0,1)  [t-1, i, j-1]
  void compute(const VecI& j, const double* dv, double* out) const override {
    const double a = coeff(j[1], j[2]);
    const double x_c = dv[0 * 2 + 0], b_c = dv[0 * 2 + 1];  // (t-1,i,j)
    const double x_n = dv[1 * 2 + 0], b_n = dv[1 * 2 + 1];  // (t-1,i-1,j)
    const double x_w = dv[2 * 2 + 0], b_w = dv[2 * 2 + 1];  // (t-1,i,j-1)
    out[0] = x_c + x_w * a / b_w - x_n * a / b_n;           // X[t,i,j]
    out[1] = b_c - a * a / b_w - a * a / b_n;               // B[t,i,j]
  }

  void initial(const VecI& j, double* out) const override {
    out[0] = 1.0 + 0.05 * std::sin(0.3 * static_cast<double>(j[1])) +
             0.05 * std::cos(0.2 * static_cast<double>(j[2]));
    out[1] = 2.0 + 0.1 * std::cos(0.1 * static_cast<double>(j[1] + j[2]));
  }
};

class HeatKernel final : public UnskewBase {
 public:
  explicit HeatKernel(MatI t_inv) : UnskewBase(std::move(t_inv)) {}

  int arity() const override { return 1; }

  // Dependence column order (original coordinates):
  //   0: (1,1)  A[t-1, i-1],  1: (1,0)  A[t-1, i],  2: (1,-1)  A[t-1, i+1]
  void compute(const VecI&, const double* dv, double* out) const override {
    out[0] = 0.25 * dv[0] + 0.5 * dv[1] + 0.25 * dv[2];
  }

  void initial(const VecI& j, double* out) const override {
    VecI o = unskew(j);
    out[0] = std::sin(0.1 * static_cast<double>(o[1])) +
             0.001 * static_cast<double>(o[0]);
  }
};

class Syn4dKernel final : public Kernel {
 public:
  int arity() const override { return 1; }

  // Dependence column order:
  //   0: (1,0,0,0), 1: (1,1,0,0), 2: (1,0,1,0), 3: (1,0,0,1), 4: (1,1,1,1)
  void compute(const VecI& j, const double* dv, double* out) const override {
    out[0] = 0.3 * dv[0] + 0.2 * dv[1] + 0.2 * dv[2] + 0.2 * dv[3] +
             0.1 * dv[4] +
             0.001 * static_cast<double>(j[0] + j[1] - j[2] + 2 * j[3]);
  }

  void initial(const VecI& j, double* out) const override {
    out[0] = 0.5 + 0.01 * static_cast<double>(j[1] + 2 * j[2] - j[3]) +
             0.002 * static_cast<double>(j[0]);
  }
};

}  // namespace

MatI sor_skew_matrix() { return MatI{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}}; }
MatI jacobi_skew_matrix() { return MatI{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}}; }
MatI heat_skew_matrix() { return MatI{{1, 0}, {1, 1}}; }

AppInstance make_heat_original(i64 t, i64 n) {
  MatI deps{{1, 1, 1}, {1, 0, -1}};
  AppInstance app;
  app.nest = make_rectangular_nest("heat", {1, 1}, {t, n}, deps);
  app.kernel = std::make_shared<HeatKernel>(MatI::identity(2));
  return app;
}

AppInstance make_heat(i64 t, i64 n) {
  AppInstance orig = make_heat_original(t, n);
  AppInstance app;
  app.nest = skew(orig.nest, heat_skew_matrix());
  app.kernel = std::make_shared<HeatKernel>(int_inverse(heat_skew_matrix()));
  return app;
}

MatQ heat_rect_h(i64 x, i64 y) {
  return MatQ{{Rat(1, x), Rat(0)}, {Rat(0), Rat(1, y)}};
}

MatQ heat_nonrect_h(i64 x, i64 z) {
  return MatQ{{Rat(1, x), Rat(0)}, {Rat(2, z), Rat(-1, z)}};
}

AppInstance make_syn4d(i64 s0, i64 s1, i64 s2, i64 s3) {
  MatI deps{{1, 1, 1, 1, 1},
            {0, 1, 0, 0, 1},
            {0, 0, 1, 0, 1},
            {0, 0, 0, 1, 1}};
  AppInstance app;
  app.nest = make_rectangular_nest("syn4d", {1, 1, 1, 1}, {s0, s1, s2, s3},
                                   deps);
  app.kernel = std::make_shared<Syn4dKernel>();
  return app;
}

MatQ syn4d_rect_h(i64 x, i64 y, i64 z, i64 w) {
  MatQ h(4, 4);
  h(0, 0) = Rat(1, x);
  h(1, 1) = Rat(1, y);
  h(2, 2) = Rat(1, z);
  h(3, 3) = Rat(1, w);
  return h;
}

MatQ syn4d_nonrect_h(i64 x, i64 y, i64 z, i64 w) {
  MatQ h = syn4d_rect_h(x, y, z, w);
  h(0, 1) = Rat(-1, x);
  return h;
}

AppInstance make_sor_original(i64 m, i64 n, double w) {
  MatI deps{{0, 0, 1, 1, 1}, {1, 0, -1, 0, 0}, {0, 1, 0, -1, 0}};
  AppInstance app;
  app.nest = make_rectangular_nest("sor", {1, 1, 1}, {m, n, n}, deps);
  app.kernel = std::make_shared<SorKernel>(MatI::identity(3), w);
  return app;
}

AppInstance make_sor(i64 m, i64 n, double w) {
  AppInstance orig = make_sor_original(m, n, w);
  AppInstance app;
  app.nest = skew(orig.nest, sor_skew_matrix());
  app.kernel =
      std::make_shared<SorKernel>(int_inverse(sor_skew_matrix()), w);
  return app;
}

AppInstance make_jacobi_original(i64 t, i64 i, i64 j) {
  MatI deps{{1, 1, 1, 1, 1}, {0, 1, -1, 0, 0}, {0, 0, 0, 1, -1}};
  AppInstance app;
  app.nest = make_rectangular_nest("jacobi", {1, 1, 1}, {t, i, j}, deps);
  app.kernel = std::make_shared<JacobiKernel>(MatI::identity(3));
  return app;
}

AppInstance make_jacobi(i64 t, i64 i, i64 j) {
  AppInstance orig = make_jacobi_original(t, i, j);
  AppInstance app;
  app.nest = skew(orig.nest, jacobi_skew_matrix());
  app.kernel = std::make_shared<JacobiKernel>(int_inverse(jacobi_skew_matrix()));
  return app;
}

AppInstance make_adi(i64 t, i64 n) {
  MatI deps{{1, 1, 1}, {0, 1, 0}, {0, 0, 1}};
  AppInstance app;
  app.nest = make_rectangular_nest("adi", {1, 1, 1}, {t, n, n}, deps);
  app.kernel = std::make_shared<AdiKernel>();
  return app;
}

namespace {
MatQ diag3(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}
}  // namespace

MatQ sor_rect_h(i64 x, i64 y, i64 z) { return diag3(x, y, z); }

MatQ sor_nonrect_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(-1, z), Rat(0), Rat(1, z)}};
}

MatQ jacobi_rect_h(i64 x, i64 y, i64 z) { return diag3(x, y, z); }

MatQ jacobi_nonrect_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, 2 * x), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

MatQ adi_rect_h(i64 x, i64 y, i64 z) { return diag3(x, y, z); }

MatQ adi_nr1_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, x), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

MatQ adi_nr2_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(-1, x)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

MatQ adi_nr3_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, x), Rat(-1, x)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

}  // namespace ctile
