#include "apps/kernels.hpp"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "deps/skew.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/exec_policy.hpp"  // CTILE_PRAGMA_SIMD

namespace ctile {

namespace {

// Block length for the row kernels' stack scratch: long rows are
// processed in cache-resident chunks with no heap traffic.
constexpr i64 kRowBlock = 256;

// Unskews a point: j_original = T^{-1} j_current.  Identity when the
// instance is not skewed.
class UnskewBase : public Kernel {
 public:
  explicit UnskewBase(MatI t_inv) : t_inv_(std::move(t_inv)) {}

 protected:
  VecI unskew(const VecI& j) const { return mul(t_inv_, j); }

 private:
  MatI t_inv_;
};

MatI int_inverse(const MatI& t) { return to_int(inverse(to_rat(t))); }

class SorKernel final : public UnskewBase {
 public:
  SorKernel(MatI t_inv, double w)
      : UnskewBase(std::move(t_inv)), w4_(w / 4.0), w1_(1.0 - w) {}

  int arity() const override { return 1; }

  // Dependence column order (original coordinates):
  //   0: (0,1,0)   A[t, i-1, j]
  //   1: (0,0,1)   A[t, i, j-1]
  //   2: (1,-1,0)  A[t-1, i+1, j]
  //   3: (1,0,-1)  A[t-1, i, j+1]
  //   4: (1,0,0)   A[t-1, i, j]
  //
  // The update is associated so dv[1] — the only dependence that can be
  // an in-row recurrence after skewing — sits on a two-op chain
  // (mul + add), with the rest of the stencil an off-chain term r.  The
  // generated code (codegen/stencil_spec.cpp sor_spec) uses the same
  // association; keep them in lockstep.
  void compute(const VecI&, const double* dv, double* out) const override {
    out[0] = w4_ * dv[1] + (w4_ * ((dv[0] + dv[2]) + dv[3]) + w1_ * dv[4]);
  }

  void compute_row(const VecI& j0, const VecI& jstep, i64 count,
                   const double* const* dep, int q, i64 dep_stride,
                   double* out, i64 out_stride) const override {
    // Only the unhandled alias shapes fall back: any dep other than 1
    // touching the row, or dep 1 aliasing forward.
    const i64 m1 = row_alias_distance(dep[1], out, out_stride, count);
    bool fallback = q != 5 || dep_stride != out_stride || m1 < 0;
    for (int l = 0; l < q && !fallback; ++l) {
      if (l != 1 && row_alias_distance(dep[l], out, out_stride, count) != 0) {
        fallback = true;
      }
    }
    if (fallback) {
      Kernel::compute_row(j0, jstep, count, dep, q, dep_stride, out,
                          out_stride);
      return;
    }
    const double* d0 = dep[0];
    const double* d1 = dep[1];
    const double* d2 = dep[2];
    const double* d3 = dep[3];
    const double* d4 = dep[4];
    const i64 ds = dep_stride;
    if (m1 == 0) {
      // Fully independent row: straight-line vectorization, per-lane op
      // order identical to compute().
      CTILE_PRAGMA_SIMD
      for (i64 i = 0; i < count; ++i) {
        out[i * out_stride] =
            w4_ * d1[i * ds] +
            (w4_ * ((d0[i * ds] + d2[i * ds]) + d3[i * ds]) + w1_ * d4[i * ds]);
      }
      return;
    }
    // dv[1] is an in-row recurrence at distance m1 (point i reads point
    // i - m1's fresh output).  Split per block: the off-chain term r is
    // vectorized — deps 0/2/3/4 were just proven row-independent, so
    // their reads see exactly the values the per-point order would —
    // then the short mul+add chain runs scalar.  At distance 1 the
    // chain value is carried in a register (the load would return
    // exactly the value just computed, so the bits are identical and
    // the store-to-load round trip leaves the critical path); longer
    // distances read d1 through its pointer so updated outputs flow in
    // naturally.
    double r[kRowBlock];
    if (m1 == 1) {
      double prev = d1[0];  // out[-stride]: before the row, never written
      for (i64 b = 0; b < count; b += kRowBlock) {
        const i64 nb = std::min(kRowBlock, count - b);
        CTILE_PRAGMA_SIMD
        for (i64 i = 0; i < nb; ++i) {
          const i64 s = (b + i) * ds;
          r[i] = w4_ * ((d0[s] + d2[s]) + d3[s]) + w1_ * d4[s];
        }
        for (i64 i = 0; i < nb; ++i) {
          prev = w4_ * prev + r[i];
          out[(b + i) * out_stride] = prev;
        }
      }
      return;
    }
    for (i64 b = 0; b < count; b += kRowBlock) {
      const i64 nb = std::min(kRowBlock, count - b);
      CTILE_PRAGMA_SIMD
      for (i64 i = 0; i < nb; ++i) {
        const i64 s = (b + i) * ds;
        r[i] = w4_ * ((d0[s] + d2[s]) + d3[s]) + w1_ * d4[s];
      }
      for (i64 i = 0; i < nb; ++i) {
        out[(b + i) * out_stride] = w4_ * d1[(b + i) * ds] + r[i];
      }
    }
  }

  void initial(const VecI& j, double* out) const override {
    VecI o = unskew(j);
    // Smooth deterministic boundary values over (t, i, j).
    out[0] = 1.0 + 0.01 * static_cast<double>(o[1]) +
             0.02 * static_cast<double>(o[2]) +
             0.001 * static_cast<double>(o[0]);
  }

 private:
  double w4_;  // w / 4
  double w1_;  // 1 - w
};

class JacobiKernel final : public UnskewBase {
 public:
  explicit JacobiKernel(MatI t_inv) : UnskewBase(std::move(t_inv)) {}

  int arity() const override { return 1; }

  // Dependence column order (original coordinates):
  //   0: (1,0,0), 1: (1,1,0), 2: (1,-1,0), 3: (1,0,1), 4: (1,0,-1)
  void compute(const VecI&, const double* dv, double* out) const override {
    out[0] = (dv[0] + dv[1] + dv[2] + dv[3] + dv[4]) / 5.0;
  }

  void compute_row(const VecI& j0, const VecI& jstep, i64 count,
                   const double* const* dep, int q, i64 dep_stride,
                   double* out, i64 out_stride) const override {
    // All five dependences advance time, so no in-row alias can occur on
    // a legal tiling; verify at pointer level and fall back otherwise.
    bool fallback = q != 5;
    for (int l = 0; l < q && !fallback; ++l) {
      if (row_alias_distance(dep[l], out, out_stride, count) != 0) {
        fallback = true;
      }
    }
    if (fallback) {
      Kernel::compute_row(j0, jstep, count, dep, q, dep_stride, out,
                          out_stride);
      return;
    }
    const double* d0 = dep[0];
    const double* d1 = dep[1];
    const double* d2 = dep[2];
    const double* d3 = dep[3];
    const double* d4 = dep[4];
#if defined(__AVX2__)
    if (dep_stride == 1 && out_stride == 1) {
      // Unit-stride rows: explicit 4-lane AVX2.  Lane-wise vaddpd/vdivpd
      // apply the scalar op order per lane, so results stay bitwise.
      const __m256d five = _mm256_set1_pd(5.0);
      i64 i = 0;
      for (; i + 4 <= count; i += 4) {
        __m256d acc = _mm256_add_pd(_mm256_loadu_pd(d0 + i),
                                    _mm256_loadu_pd(d1 + i));
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(d2 + i));
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(d3 + i));
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(d4 + i));
        _mm256_storeu_pd(out + i, _mm256_div_pd(acc, five));
      }
      for (; i < count; ++i) {
        out[i] = (d0[i] + d1[i] + d2[i] + d3[i] + d4[i]) / 5.0;
      }
      return;
    }
#endif
    const i64 ds = dep_stride;
    CTILE_PRAGMA_SIMD
    for (i64 i = 0; i < count; ++i) {
      out[i * out_stride] =
          (d0[i * ds] + d1[i * ds] + d2[i * ds] + d3[i * ds] + d4[i * ds]) /
          5.0;
    }
  }

  void initial(const VecI& j, double* out) const override {
    VecI o = unskew(j);
    out[0] = std::sin(0.05 * static_cast<double>(o[1])) +
             std::cos(0.07 * static_cast<double>(o[2]));
  }
};

class AdiKernel final : public Kernel {
 public:
  /// `n` is the spatial extent (1 <= i,j <= n): modest sizes get the
  /// read-only coefficient array A[i,j] precomputed, which is exactly
  /// the paper's model (\S4.3 treats A as data, not a formula).  The
  /// table holds the bit-identical doubles coeff() produces, so the
  /// batched row path below and the per-point transcendental path agree
  /// bitwise.  Oversized (or unknown, n <= 0) extents skip the table;
  /// compute_row then falls back to per-point evaluation.
  explicit AdiKernel(i64 n = 0) : n_(n) {
    if (n_ >= 1 && n_ <= kMaxTableN) {
      coeffs_.reserve(static_cast<std::size_t>(n_ * n_));
      for (i64 i = 1; i <= n_; ++i) {
        for (i64 j = 1; j <= n_; ++j) coeffs_.push_back(coeff(i, j));
      }
    }
  }

  int arity() const override { return 2; }  // (X, B)

  // Coefficient array A[i,j]: small so B stays near 2 (division-safe).
  static double coeff(i64 i, i64 j) {
    return 0.01 + 0.002 * std::sin(0.1 * static_cast<double>(i) +
                                   0.2 * static_cast<double>(j));
  }

  // Dependence column order:
  //   0: (1,0,0)  [t-1, i, j]
  //   1: (1,1,0)  [t-1, i-1, j]
  //   2: (1,0,1)  [t-1, i, j-1]
  //
  // The update is associated so the dv[2] terms — the only dependence
  // that can be an in-row recurrence under the non-rectangular tilings
  // (the row direction there is (1,0,1), exactly dep 2) — trail on
  // their own add/sub, with the rest of each expression an off-chain
  // prefix.  The generated code (codegen/stencil_spec.cpp adi_spec)
  // uses the same association; keep them in lockstep.
  void compute(const VecI& j, const double* dv, double* out) const override {
    const double a = coeff(j[1], j[2]);
    const double x_c = dv[0 * 2 + 0], b_c = dv[0 * 2 + 1];  // (t-1,i,j)
    const double x_n = dv[1 * 2 + 0], b_n = dv[1 * 2 + 1];  // (t-1,i-1,j)
    const double x_w = dv[2 * 2 + 0], b_w = dv[2 * 2 + 1];  // (t-1,i,j-1)
    out[0] = (x_c - x_n * a / b_n) + x_w * a / b_w;         // X[t,i,j]
    out[1] = (b_c - a * a / b_n) - a * a / b_w;             // B[t,i,j]
  }

  void compute_row(const VecI& j0, const VecI& jstep, i64 count,
                   const double* const* dep, int q, i64 dep_stride,
                   double* out, i64 out_stride) const override {
    // Row points advance (i, j) affinely, so the table index advances by
    // a constant too.  Dep 2 may be an in-row recurrence (on the
    // non-rectangular tilings the row direction is (1,0,1), exactly
    // dep 2's distance): a backward alias is handled by the block split
    // below.  Any other alias shape, or out-of-table coordinates, falls
    // back to the per-point path.
    bool fallback = q != 3 || coeffs_.empty();
    const i64 m2 =
        fallback ? 0 : row_alias_distance(dep[2], out, out_stride, count);
    if (m2 < 0) fallback = true;
    for (int l = 0; l < 2 && !fallback; ++l) {
      if (row_alias_distance(dep[l], out, out_stride, count) != 0) {
        fallback = true;
      }
    }
    i64 idx = 0;
    i64 idx_step = 0;
    if (!fallback) {
      const i64 i0 = j0[1], jj0 = j0[2];
      const i64 i_end = i0 + (count - 1) * jstep[1];
      const i64 j_end = jj0 + (count - 1) * jstep[2];
      if (i0 < 1 || i0 > n_ || jj0 < 1 || jj0 > n_ || i_end < 1 ||
          i_end > n_ || j_end < 1 || j_end > n_) {
        fallback = true;  // outside the table: let compute() handle it
      } else {
        idx = (i0 - 1) * n_ + (jj0 - 1);
        idx_step = jstep[1] * n_ + jstep[2];
      }
    }
    if (fallback) {
      Kernel::compute_row(j0, jstep, count, dep, q, dep_stride, out,
                          out_stride);
      return;
    }
    const double* tab = coeffs_.data();
    const double* dc = dep[0];
    const double* dn = dep[1];
    const double* dw = dep[2];
    const i64 ds = dep_stride;
    if (m2 == 0) {
      // Fully independent row: straight-line vectorization, per-lane op
      // order identical to compute().
      CTILE_PRAGMA_SIMD
      for (i64 i = 0; i < count; ++i) {
        const double a = tab[idx + i * idx_step];
        const double x_c = dc[i * ds + 0], b_c = dc[i * ds + 1];
        const double x_n = dn[i * ds + 0], b_n = dn[i * ds + 1];
        const double x_w = dw[i * ds + 0], b_w = dw[i * ds + 1];
        out[i * out_stride + 0] = (x_c - x_n * a / b_n) + x_w * a / b_w;
        out[i * out_stride + 1] = (b_c - a * a / b_n) - a * a / b_w;
      }
      return;
    }
    // dv[2] is an in-row recurrence at distance m2 (point i reads point
    // i - m2's fresh output).  Split per block: the off-chain prefixes
    // are vectorized — deps 0/1 were just proven row-independent, so
    // their reads see exactly the values the per-point order would —
    // then the trailing chain ops run scalar.  At distance 1 the chain
    // pair (X, B) is carried in registers (the loads would return
    // exactly the values just computed, so the bits are identical and
    // the store-to-load round trips leave the critical path); longer
    // distances read dep 2 through its pointer so updated outputs flow
    // in naturally.
    double av[kRowBlock], r0[kRowBlock], r1[kRowBlock];
    if (m2 == 1) {
      double px = dw[0], pb = dw[1];  // out[-stride]: before the row
      for (i64 b = 0; b < count; b += kRowBlock) {
        const i64 nb = std::min(kRowBlock, count - b);
        CTILE_PRAGMA_SIMD
        for (i64 i = 0; i < nb; ++i) {
          const i64 s = (b + i) * ds;
          const double a = tab[idx + (b + i) * idx_step];
          const double b_n = dn[s + 1];
          av[i] = a;
          r0[i] = dc[s + 0] - dn[s + 0] * a / b_n;
          r1[i] = dc[s + 1] - a * a / b_n;
        }
        for (i64 i = 0; i < nb; ++i) {
          const double a = av[i];
          const double o0 = r0[i] + px * a / pb;
          const double o1 = r1[i] - a * a / pb;
          out[(b + i) * out_stride + 0] = o0;
          out[(b + i) * out_stride + 1] = o1;
          px = o0;
          pb = o1;
        }
      }
      return;
    }
    for (i64 b = 0; b < count; b += kRowBlock) {
      const i64 nb = std::min(kRowBlock, count - b);
      CTILE_PRAGMA_SIMD
      for (i64 i = 0; i < nb; ++i) {
        const i64 s = (b + i) * ds;
        const double a = tab[idx + (b + i) * idx_step];
        const double b_n = dn[s + 1];
        av[i] = a;
        r0[i] = dc[s + 0] - dn[s + 0] * a / b_n;
        r1[i] = dc[s + 1] - a * a / b_n;
      }
      for (i64 i = 0; i < nb; ++i) {
        const i64 s = (b + i) * ds;
        const double a = av[i];
        const double b_w = dw[s + 1];
        out[(b + i) * out_stride + 0] = r0[i] + dw[s + 0] * a / b_w;
        out[(b + i) * out_stride + 1] = r1[i] - a * a / b_w;
      }
    }
  }

  void initial(const VecI& j, double* out) const override {
    out[0] = 1.0 + 0.05 * std::sin(0.3 * static_cast<double>(j[1])) +
             0.05 * std::cos(0.2 * static_cast<double>(j[2]));
    out[1] = 2.0 + 0.1 * std::cos(0.1 * static_cast<double>(j[1] + j[2]));
  }

 private:
  static constexpr i64 kMaxTableN = 2048;  // 32 MB of doubles at most
  i64 n_;
  std::vector<double> coeffs_;
};

class HeatKernel final : public UnskewBase {
 public:
  explicit HeatKernel(MatI t_inv) : UnskewBase(std::move(t_inv)) {}

  int arity() const override { return 1; }

  // Dependence column order (original coordinates):
  //   0: (1,1)  A[t-1, i-1],  1: (1,0)  A[t-1, i],  2: (1,-1)  A[t-1, i+1]
  void compute(const VecI&, const double* dv, double* out) const override {
    out[0] = 0.25 * dv[0] + 0.5 * dv[1] + 0.25 * dv[2];
  }

  void initial(const VecI& j, double* out) const override {
    VecI o = unskew(j);
    out[0] = std::sin(0.1 * static_cast<double>(o[1])) +
             0.001 * static_cast<double>(o[0]);
  }
};

class Syn4dKernel final : public Kernel {
 public:
  int arity() const override { return 1; }

  // Dependence column order:
  //   0: (1,0,0,0), 1: (1,1,0,0), 2: (1,0,1,0), 3: (1,0,0,1), 4: (1,1,1,1)
  void compute(const VecI& j, const double* dv, double* out) const override {
    out[0] = 0.3 * dv[0] + 0.2 * dv[1] + 0.2 * dv[2] + 0.2 * dv[3] +
             0.1 * dv[4] +
             0.001 * static_cast<double>(j[0] + j[1] - j[2] + 2 * j[3]);
  }

  void initial(const VecI& j, double* out) const override {
    out[0] = 0.5 + 0.01 * static_cast<double>(j[1] + 2 * j[2] - j[3]) +
             0.002 * static_cast<double>(j[0]);
  }
};

}  // namespace

MatI sor_skew_matrix() { return MatI{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}}; }
MatI jacobi_skew_matrix() { return MatI{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}}; }
MatI heat_skew_matrix() { return MatI{{1, 0}, {1, 1}}; }

AppInstance make_heat_original(i64 t, i64 n) {
  MatI deps{{1, 1, 1}, {1, 0, -1}};
  AppInstance app;
  app.nest = make_rectangular_nest("heat", {1, 1}, {t, n}, deps);
  app.kernel = std::make_shared<HeatKernel>(MatI::identity(2));
  return app;
}

AppInstance make_heat(i64 t, i64 n) {
  AppInstance orig = make_heat_original(t, n);
  AppInstance app;
  app.nest = skew(orig.nest, heat_skew_matrix());
  app.kernel = std::make_shared<HeatKernel>(int_inverse(heat_skew_matrix()));
  return app;
}

MatQ heat_rect_h(i64 x, i64 y) {
  return MatQ{{Rat(1, x), Rat(0)}, {Rat(0), Rat(1, y)}};
}

MatQ heat_nonrect_h(i64 x, i64 z) {
  return MatQ{{Rat(1, x), Rat(0)}, {Rat(2, z), Rat(-1, z)}};
}

AppInstance make_syn4d(i64 s0, i64 s1, i64 s2, i64 s3) {
  MatI deps{{1, 1, 1, 1, 1},
            {0, 1, 0, 0, 1},
            {0, 0, 1, 0, 1},
            {0, 0, 0, 1, 1}};
  AppInstance app;
  app.nest = make_rectangular_nest("syn4d", {1, 1, 1, 1}, {s0, s1, s2, s3},
                                   deps);
  app.kernel = std::make_shared<Syn4dKernel>();
  return app;
}

MatQ syn4d_rect_h(i64 x, i64 y, i64 z, i64 w) {
  MatQ h(4, 4);
  h(0, 0) = Rat(1, x);
  h(1, 1) = Rat(1, y);
  h(2, 2) = Rat(1, z);
  h(3, 3) = Rat(1, w);
  return h;
}

MatQ syn4d_nonrect_h(i64 x, i64 y, i64 z, i64 w) {
  MatQ h = syn4d_rect_h(x, y, z, w);
  h(0, 1) = Rat(-1, x);
  return h;
}

AppInstance make_sor_original(i64 m, i64 n, double w) {
  MatI deps{{0, 0, 1, 1, 1}, {1, 0, -1, 0, 0}, {0, 1, 0, -1, 0}};
  AppInstance app;
  app.nest = make_rectangular_nest("sor", {1, 1, 1}, {m, n, n}, deps);
  app.kernel = std::make_shared<SorKernel>(MatI::identity(3), w);
  return app;
}

AppInstance make_sor(i64 m, i64 n, double w) {
  AppInstance orig = make_sor_original(m, n, w);
  AppInstance app;
  app.nest = skew(orig.nest, sor_skew_matrix());
  app.kernel =
      std::make_shared<SorKernel>(int_inverse(sor_skew_matrix()), w);
  return app;
}

AppInstance make_jacobi_original(i64 t, i64 i, i64 j) {
  MatI deps{{1, 1, 1, 1, 1}, {0, 1, -1, 0, 0}, {0, 0, 0, 1, -1}};
  AppInstance app;
  app.nest = make_rectangular_nest("jacobi", {1, 1, 1}, {t, i, j}, deps);
  app.kernel = std::make_shared<JacobiKernel>(MatI::identity(3));
  return app;
}

AppInstance make_jacobi(i64 t, i64 i, i64 j) {
  AppInstance orig = make_jacobi_original(t, i, j);
  AppInstance app;
  app.nest = skew(orig.nest, jacobi_skew_matrix());
  app.kernel = std::make_shared<JacobiKernel>(int_inverse(jacobi_skew_matrix()));
  return app;
}

AppInstance make_adi(i64 t, i64 n) {
  MatI deps{{1, 1, 1}, {0, 1, 0}, {0, 0, 1}};
  AppInstance app;
  app.nest = make_rectangular_nest("adi", {1, 1, 1}, {t, n, n}, deps);
  app.kernel = std::make_shared<AdiKernel>(n);
  return app;
}

namespace {
MatQ diag3(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}
}  // namespace

MatQ sor_rect_h(i64 x, i64 y, i64 z) { return diag3(x, y, z); }

MatQ sor_nonrect_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(-1, z), Rat(0), Rat(1, z)}};
}

MatQ jacobi_rect_h(i64 x, i64 y, i64 z) { return diag3(x, y, z); }

MatQ jacobi_nonrect_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, 2 * x), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

MatQ adi_rect_h(i64 x, i64 y, i64 z) { return diag3(x, y, z); }

MatQ adi_nr1_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, x), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

MatQ adi_nr2_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(-1, x)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

MatQ adi_nr3_h(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, x), Rat(-1, x)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

}  // namespace ctile
