// Linear inequality constraints over integer variables.
//
// A Constraint represents  coeffs . x + constant >= 0  with integer
// coefficients.  Constraints are kept gcd-normalized so that syntactic
// deduplication catches scaled copies produced by Fourier-Motzkin.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/checked_int.hpp"

namespace ctile {

struct Constraint {
  VecI coeffs;   ///< one coefficient per variable
  i64 constant;  ///< additive constant

  Constraint() : constant(0) {}
  Constraint(VecI c, i64 k) : coeffs(std::move(c)), constant(k) {}

  int dim() const { return static_cast<int>(coeffs.size()); }

  /// Value of coeffs . x + constant.
  i64 eval(const VecI& x) const;
  Rat eval(const VecQ& x) const;

  /// True iff the point satisfies the constraint.
  bool satisfied(const VecI& x) const { return eval(x) >= 0; }

  /// True iff all coefficients are zero (then the constraint is either a
  /// tautology or an infeasibility depending on the constant's sign).
  bool is_constant() const;

  /// Divide through by the gcd of all coefficients and the constant's
  /// compatible part: gcd of coeffs g, then constant -> floor(constant/g)
  /// (sound for integer solutions: g*q + c >= 0  <=>  q >= ceil(-c/g)).
  void normalize();

  /// Human-readable form like "2*x0 - x1 + 3 >= 0".
  std::string to_string() const;

  friend bool operator==(const Constraint& a, const Constraint& b) {
    return a.coeffs == b.coeffs && a.constant == b.constant;
  }
  friend bool operator<(const Constraint& a, const Constraint& b) {
    if (a.coeffs != b.coeffs) return a.coeffs < b.coeffs;
    return a.constant < b.constant;
  }
};

/// coeffs . x + constant >= 0 from an upper-bound form x_k <= e, etc.
/// Convenience builders used when assembling iteration spaces.
Constraint lower_bound(int dim, int var, i64 bound);   // x_var >= bound
Constraint upper_bound(int dim, int var, i64 bound);   // x_var <= bound

}  // namespace ctile
