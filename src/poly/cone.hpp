// Polyhedral cones {x : A x >= 0} and their extreme rays.
//
// The tiling cone of an algorithm with dependence matrix D is the set of
// row vectors h with h . d >= 0 for every dependence d (so that tiling by
// planes normal to h is legal).  Its extreme rays are the "sides of the
// tiling cone" from which, per Hodzic-Shang and the paper's \S4, the
// scheduling-optimal tile shapes are drawn.
//
// Rays are enumerated combinatorially: every extreme ray of a pointed
// n-dimensional cone lies on n-1 linearly independent facets, so we solve
// each (n-1)-subset of constraints for its null direction and keep the
// directions that satisfy all constraints.  Loop depths are tiny (n <= 6),
// so the subset enumeration is exact and fast.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace ctile {

struct ConeRays {
  /// Extreme rays, each normalized to primitive integer form (gcd 1,
  /// lexicographically-positive orientation is NOT forced; rays keep the
  /// orientation satisfying the constraints).
  std::vector<VecI> rays;
  /// True iff the cone contains a full line (is not pointed); then the
  /// ray list describes the pointed part only and callers should treat
  /// the result as partial.
  bool has_lineality;
};

/// Extreme rays of {x in R^n : rows(a) . x >= 0 componentwise}.
/// `a` is a q x n matrix of constraint rows.
ConeRays extreme_rays(const MatI& a);

/// Divide by the gcd of the entries; zero vectors stay zero.
VecI primitive(const VecI& v);

/// True iff x satisfies rows(a) . x >= 0.
bool in_cone(const MatI& a, const VecI& x);

}  // namespace ctile
