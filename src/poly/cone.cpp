#include "poly/cone.hpp"

#include <algorithm>
#include <functional>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"

namespace ctile {

VecI primitive(const VecI& v) {
  i64 g = 0;
  for (i64 x : v) g = gcd_i64(g, x);
  if (g <= 1) return v;
  VecI out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] / g;
  return out;
}

bool in_cone(const MatI& a, const VecI& x) {
  CTILE_ASSERT(a.cols() == static_cast<int>(x.size()));
  for (int r = 0; r < a.rows(); ++r) {
    if (dot(a.row(r), x) < 0) return false;
  }
  return true;
}

namespace {

// Rank of the subset of rows `rows` of a.
int subset_rank(const MatI& a, const std::vector<int>& rows) {
  MatQ m(static_cast<int>(rows.size()), a.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (int c = 0; c < a.cols(); ++c) {
      m(static_cast<int>(i), c) = Rat(a(rows[i], c));
    }
  }
  return rank(m);
}

// Integer null direction of an (n-1)-rank row subset, or empty if the
// null space is not 1-dimensional.
VecI null_direction(const MatI& a, const std::vector<int>& rows) {
  MatQ m(static_cast<int>(rows.size()), a.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (int c = 0; c < a.cols(); ++c) {
      m(static_cast<int>(i), c) = Rat(a(rows[i], c));
    }
  }
  MatQ ns = null_space(m);
  if (ns.cols() != 1) return {};
  // Clear denominators to get a primitive integer ray.
  i64 l = 1;
  for (int r = 0; r < ns.rows(); ++r) l = lcm_i64(l, ns(r, 0).den());
  VecI dir(static_cast<std::size_t>(ns.rows()));
  for (int r = 0; r < ns.rows(); ++r) {
    dir[static_cast<std::size_t>(r)] = (ns(r, 0) * Rat(l)).as_int();
  }
  return primitive(dir);
}

void enumerate_subsets(int q, int k, std::vector<int>& cur, int start,
                       const std::function<void(const std::vector<int>&)>& fn) {
  if (static_cast<int>(cur.size()) == k) {
    fn(cur);
    return;
  }
  for (int i = start; i <= q - (k - static_cast<int>(cur.size())); ++i) {
    cur.push_back(i);
    enumerate_subsets(q, k, cur, i + 1, fn);
    cur.pop_back();
  }
}

}  // namespace

ConeRays extreme_rays(const MatI& a) {
  const int n = a.cols();
  const int q = a.rows();
  ConeRays out;
  // Lineality space: {x : A x = 0}.  Nonempty lineality means the cone is
  // not pointed and the facet-subset enumeration below only captures the
  // pointed quotient.
  MatQ aq = to_rat(a);
  out.has_lineality = rank(aq) < n;

  if (n == 1) {
    // Degenerate 1-D case: the rays are +1 / -1 as admitted.
    for (i64 s : {i64{1}, i64{-1}}) {
      if (in_cone(a, {s})) out.rays.push_back({s});
    }
    return out;
  }

  std::vector<VecI> found;
  std::vector<int> cur;
  enumerate_subsets(q, n - 1, cur, 0, [&](const std::vector<int>& rows) {
    if (subset_rank(a, rows) != n - 1) return;
    VecI dir = null_direction(a, rows);
    if (dir.empty()) return;
    for (const VecI& cand : {dir, vec_neg(dir)}) {
      if (!in_cone(a, cand)) continue;
      if (std::find(found.begin(), found.end(), cand) == found.end()) {
        found.push_back(cand);
      }
    }
  });

  // Drop non-extreme candidates: a candidate is extreme iff the set of
  // constraints tight at it has rank exactly n-1 (for pointed cones) and
  // it is not a positive combination of two others.  The tightness-rank
  // test is the standard certificate.
  for (const VecI& r : found) {
    std::vector<int> tight;
    for (int row = 0; row < q; ++row) {
      if (dot(a.row(row), r) == 0) tight.push_back(row);
    }
    if (tight.empty()) continue;
    if (subset_rank(a, tight) == n - 1) out.rays.push_back(r);
  }
  std::sort(out.rays.begin(), out.rays.end());
  return out;
}

}  // namespace ctile
