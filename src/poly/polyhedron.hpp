// Convex polyhedra as conjunctions of integer linear inequalities, with
// Fourier-Motzkin elimination and loop-bound extraction.
//
// This is the workhorse behind (a) sequential tiled loop bounds, (b) the
// tile-space bounds l^S_k / u^S_k, and (c) integer point scanning used by
// tests and the reference executors.  FM elimination over integers is an
// over-approximation of the integer projection (it computes the rational
// shadow); all consumers either re-check membership per point (scanning) or
// tolerate empty boundary tiles (tile spaces), which the paper's scheme
// does too ("for boundary tiles these bounds can be corrected using
// inequalities describing the original iteration space").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "poly/constraint.hpp"

namespace ctile {

/// Inclusive integer interval; empty() when lo > hi.
struct IntRange {
  i64 lo;
  i64 hi;
  bool empty() const { return lo > hi; }
  i64 count() const { return empty() ? 0 : hi - lo + 1; }
};

class Polyhedron {
 public:
  Polyhedron() : dim_(0) {}
  explicit Polyhedron(int dim) : dim_(dim) { CTILE_ASSERT(dim >= 0); }

  int dim() const { return dim_; }
  const std::vector<Constraint>& constraints() const { return cons_; }
  int num_constraints() const { return static_cast<int>(cons_.size()); }

  /// Add a (normalized, deduplicated) constraint.  Dimension must match.
  void add(Constraint c);

  /// Axis-aligned box [lo_i, hi_i] for all i.
  static Polyhedron box(const VecI& lo, const VecI& hi);

  bool contains(const VecI& x) const;
  bool contains_rational(const VecQ& x) const;

  /// Eliminate variable `var` by Fourier-Motzkin; result has dim-1
  /// variables (the remaining ones keep their relative order).
  Polyhedron eliminate(int var) const;

  /// Eliminate all variables with index >= keep, producing the rational
  /// shadow on the first `keep` variables.
  Polyhedron project_prefix(int keep) const;

  /// Range of variable `var` given fixed values of variables 0..var-1.
  /// Must be called on a polyhedron whose constraints only involve
  /// variables 0..var (i.e. a prefix projection).  Unbounded directions
  /// throw Error (iteration spaces are compact by construction).
  IntRange var_range(int var, const VecI& outer) const;

  /// True iff the *rational* polyhedron is empty (exact FM test).
  bool empty_rational() const;

  /// Copy with redundant constraints removed: a constraint is dropped if
  /// the others still imply it (tested by FM emptiness of {others,
  /// negation}).  Exact for integer solution sets thanks to the
  /// normalization tightening; costs one FM run per constraint, so use it
  /// on codegen-bound polyhedra, not in inner loops.
  Polyhedron simplified() const;

  /// True if mutual implication of all constraints is provable via FM
  /// (then the two integer sets are equal).  Conservative: may return
  /// false for equal sets whose equivalence needs deeper integer
  /// reasoning than FM-with-tightening provides.
  static bool equal_integer_sets(const Polyhedron& a, const Polyhedron& b);

  /// Lexicographic scan of all integer points, invoking fn for each.
  /// Implemented with per-level FM projections, so it touches only
  /// feasible prefixes.
  void scan(const std::function<void(const VecI&)>& fn) const;

  /// Number of integer points (scan-based; intended for tests/small sets).
  i64 count_points() const;

  /// Bounding box of the rational shadow per dimension.
  std::vector<IntRange> bounding_box() const;

  /// The per-level projections [P_0 .. P_{dim-1}] where P_k constrains
  /// variables 0..k.  P_{dim-1} is *this.  Used by scan() and by the
  /// code generator to emit loop bounds.
  std::vector<Polyhedron> level_projections() const;

  std::string to_string() const;

 private:
  int dim_;
  std::vector<Constraint> cons_;
};

/// Transform the polyhedron {x : constraints} by an affine substitution
/// x = M*y + c (M rational, c rational), returning constraints over y with
/// integer coefficients (denominators cleared).
Polyhedron substitute(const Polyhedron& p, const MatQ& m, const VecQ& c);

}  // namespace ctile
