#include "poly/constraint.hpp"

#include "linalg/rat_matops.hpp"
#include "support/strings.hpp"

namespace ctile {

i64 Constraint::eval(const VecI& x) const {
  CTILE_ASSERT(x.size() == coeffs.size());
  i128 acc = constant;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    acc += static_cast<i128>(coeffs[i]) * x[i];
  }
  return narrow_i64(acc);
}

Rat Constraint::eval(const VecQ& x) const {
  CTILE_ASSERT(x.size() == coeffs.size());
  Rat acc(constant);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    acc += Rat(coeffs[i]) * x[i];
  }
  return acc;
}

bool Constraint::is_constant() const {
  for (i64 c : coeffs) {
    if (c != 0) return false;
  }
  return true;
}

void Constraint::normalize() {
  i64 g = 0;
  for (i64 c : coeffs) g = gcd_i64(g, c);
  if (g <= 1) return;
  for (i64& c : coeffs) c /= g;
  // For integer x:  g*(a.x) + constant >= 0  <=>  a.x >= ceil(-constant/g)
  //                                          <=>  a.x + floor(constant/g) >= 0.
  constant = floor_div(constant, g);
}

std::string Constraint::to_string() const {
  std::vector<std::string> terms;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    std::string t;
    if (coeffs[i] == 1) {
      t = "x" + std::to_string(i);
    } else if (coeffs[i] == -1) {
      t = "-x" + std::to_string(i);
    } else {
      t = std::to_string(coeffs[i]) + "*x" + std::to_string(i);
    }
    terms.push_back(t);
  }
  std::string lhs = terms.empty() ? "0" : join(terms, " + ");
  if (constant > 0) {
    lhs += " + " + std::to_string(constant);
  } else if (constant < 0) {
    lhs += " - " + std::to_string(-constant);
  }
  return lhs + " >= 0";
}

Constraint lower_bound(int dim, int var, i64 bound) {
  CTILE_ASSERT(var >= 0 && var < dim);
  Constraint c(VecI(static_cast<std::size_t>(dim), 0), neg_ck(bound));
  c.coeffs[static_cast<std::size_t>(var)] = 1;
  return c;
}

Constraint upper_bound(int dim, int var, i64 bound) {
  CTILE_ASSERT(var >= 0 && var < dim);
  Constraint c(VecI(static_cast<std::size_t>(dim), 0), bound);
  c.coeffs[static_cast<std::size_t>(var)] = -1;
  return c;
}

}  // namespace ctile
