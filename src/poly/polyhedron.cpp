#include "poly/polyhedron.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "linalg/rat_matops.hpp"
#include "support/strings.hpp"

namespace ctile {

void Polyhedron::add(Constraint c) {
  CTILE_ASSERT(c.dim() == dim_);
  c.normalize();
  // Skip tautologies; keep one copy of everything else.
  if (c.is_constant() && c.constant >= 0) return;
  // Dominance: after normalize(), two constraints with the same
  // coefficient vector are a.x + k >= 0 for different k, and the
  // smaller k implies the larger.  Keeping only the tightest one is
  // exact and caps Fourier-Motzkin's duplicate explosion (eliminate()
  // funnels every derived combination through here).
  auto same = std::find_if(cons_.begin(), cons_.end(), [&](const Constraint& e) {
    return e.coeffs == c.coeffs;
  });
  if (same != cons_.end()) {
    same->constant = std::min(same->constant, c.constant);
    return;
  }
  cons_.push_back(std::move(c));
}

Polyhedron Polyhedron::box(const VecI& lo, const VecI& hi) {
  CTILE_ASSERT(lo.size() == hi.size());
  int n = static_cast<int>(lo.size());
  Polyhedron p(n);
  for (int i = 0; i < n; ++i) {
    p.add(lower_bound(n, i, lo[static_cast<std::size_t>(i)]));
    p.add(upper_bound(n, i, hi[static_cast<std::size_t>(i)]));
  }
  return p;
}

bool Polyhedron::contains(const VecI& x) const {
  for (const Constraint& c : cons_) {
    if (!c.satisfied(x)) return false;
  }
  return true;
}

bool Polyhedron::contains_rational(const VecQ& x) const {
  for (const Constraint& c : cons_) {
    if (c.eval(x).is_negative()) return false;
  }
  return true;
}

Polyhedron Polyhedron::eliminate(int var) const {
  CTILE_ASSERT(var >= 0 && var < dim_);
  Polyhedron out(dim_ - 1);
  auto drop_var = [&](const Constraint& c) {
    Constraint r;
    r.coeffs.reserve(static_cast<std::size_t>(dim_ - 1));
    for (int i = 0; i < dim_; ++i) {
      if (i != var) r.coeffs.push_back(c.coeffs[static_cast<std::size_t>(i)]);
    }
    r.constant = c.constant;
    return r;
  };

  std::vector<const Constraint*> lowers, uppers;
  for (const Constraint& c : cons_) {
    i64 a = c.coeffs[static_cast<std::size_t>(var)];
    if (a > 0) {
      lowers.push_back(&c);
    } else if (a < 0) {
      uppers.push_back(&c);
    } else {
      out.add(drop_var(c));
    }
  }
  // Combine every (lower, upper) pair: q*(lower) + p*(upper) cancels var,
  // where p = coeff in lower (> 0) and q = -coeff in upper (> 0).
  for (const Constraint* lo : lowers) {
    for (const Constraint* up : uppers) {
      i64 p = lo->coeffs[static_cast<std::size_t>(var)];
      i64 q = neg_ck(up->coeffs[static_cast<std::size_t>(var)]);
      Constraint combo;
      combo.coeffs.reserve(static_cast<std::size_t>(dim_ - 1));
      for (int i = 0; i < dim_; ++i) {
        if (i == var) continue;
        i128 v = static_cast<i128>(q) * lo->coeffs[static_cast<std::size_t>(i)] +
                 static_cast<i128>(p) * up->coeffs[static_cast<std::size_t>(i)];
        combo.coeffs.push_back(narrow_i64(v));
      }
      combo.constant = narrow_i64(static_cast<i128>(q) * lo->constant +
                                  static_cast<i128>(p) * up->constant);
      if (combo.is_constant() && combo.constant < 0) {
        // Record the contradiction explicitly so emptiness is visible.
        out.cons_.push_back(std::move(combo));
        continue;
      }
      out.add(std::move(combo));
    }
  }
  return out;
}

Polyhedron Polyhedron::project_prefix(int keep) const {
  CTILE_ASSERT(keep >= 0 && keep <= dim_);
  Polyhedron p = *this;
  for (int v = dim_ - 1; v >= keep; --v) {
    p = p.eliminate(v);
  }
  return p;
}

IntRange Polyhedron::var_range(int var, const VecI& outer) const {
  CTILE_ASSERT(static_cast<int>(outer.size()) >= var);
  i64 lo = std::numeric_limits<i64>::min();
  i64 hi = std::numeric_limits<i64>::max();
  bool lo_bounded = false, hi_bounded = false;
  for (const Constraint& c : cons_) {
    for (int i = var + 1; i < dim_; ++i) {
      CTILE_ASSERT_MSG(c.coeffs[static_cast<std::size_t>(i)] == 0,
                       "var_range requires a prefix-projected polyhedron");
    }
    i64 a = c.coeffs[static_cast<std::size_t>(var)];
    // rest = constant + sum_{i < var} coeff_i * outer_i
    i128 rest = c.constant;
    for (int i = 0; i < var; ++i) {
      rest += static_cast<i128>(c.coeffs[static_cast<std::size_t>(i)]) *
              outer[static_cast<std::size_t>(i)];
    }
    if (a > 0) {
      // a*x + rest >= 0  =>  x >= ceil(-rest / a)
      i64 bound = ceil_div(narrow_i64(-rest), a);
      lo = std::max(lo, bound);
      lo_bounded = true;
    } else if (a < 0) {
      // a*x + rest >= 0  =>  x <= floor(rest / -a)
      i64 bound = floor_div(narrow_i64(rest), neg_ck(a));
      hi = std::min(hi, bound);
      hi_bounded = true;
    } else if (rest < 0) {
      return {1, 0};  // infeasible for this outer prefix
    }
  }
  if (!lo_bounded || !hi_bounded) {
    throw Error("var_range: unbounded variable x" + std::to_string(var));
  }
  return {lo, hi};
}

bool Polyhedron::empty_rational() const {
  Polyhedron p = project_prefix(0);
  for (const Constraint& c : p.cons_) {
    if (c.constant < 0) return true;
  }
  return false;
}

namespace {

// The negation of c over integers: c is (a.x + k >= 0), its integer
// negation is (a.x + k <= -1), i.e. (-a).x - k - 1 >= 0.
Constraint negate_constraint(const Constraint& c) {
  Constraint neg;
  neg.coeffs.reserve(c.coeffs.size());
  for (i64 v : c.coeffs) neg.coeffs.push_back(neg_ck(v));
  neg.constant = sub_ck(neg_ck(c.constant), 1);
  return neg;
}

}  // namespace

Polyhedron Polyhedron::simplified() const {
  Polyhedron out(dim_);
  std::vector<bool> kept(cons_.size(), true);
  for (std::size_t i = 0; i < cons_.size(); ++i) {
    // Candidate system: all constraints still kept except i, plus the
    // negation of i.  If that is empty, i is implied and can go.
    Polyhedron test(dim_);
    for (std::size_t j = 0; j < cons_.size(); ++j) {
      if (j == i || !kept[j]) continue;
      test.add(cons_[j]);
    }
    test.add(negate_constraint(cons_[i]));
    if (test.empty_rational()) {
      kept[i] = false;
    }
  }
  for (std::size_t i = 0; i < cons_.size(); ++i) {
    if (kept[i]) out.add(cons_[i]);
  }
  return out;
}

bool Polyhedron::equal_integer_sets(const Polyhedron& a, const Polyhedron& b) {
  CTILE_ASSERT(a.dim() == b.dim());
  // a subset of b: for every constraint c of b, {a, not c} is empty.
  auto subset = [](const Polyhedron& x, const Polyhedron& y) {
    for (const Constraint& c : y.cons_) {
      Polyhedron test = x;
      test.add(negate_constraint(c));
      if (!test.empty_rational()) return false;
    }
    return true;
  };
  return subset(a, b) && subset(b, a);
}

std::vector<Polyhedron> Polyhedron::level_projections() const {
  std::vector<Polyhedron> levels(static_cast<std::size_t>(dim_));
  if (dim_ == 0) return levels;
  levels[static_cast<std::size_t>(dim_ - 1)] = *this;
  for (int v = dim_ - 1; v >= 1; --v) {
    levels[static_cast<std::size_t>(v - 1)] =
        levels[static_cast<std::size_t>(v)].eliminate(v);
  }
  return levels;
}

void Polyhedron::scan(const std::function<void(const VecI&)>& fn) const {
  if (dim_ == 0) return;
  std::vector<Polyhedron> levels = level_projections();
  VecI point(static_cast<std::size_t>(dim_), 0);
  // Iterative nested loop over levels; recursion depth = dim_ is tiny but
  // an explicit helper keeps the ranges exact per level.
  std::function<void(int)> walk = [&](int level) {
    IntRange r = levels[static_cast<std::size_t>(level)].var_range(level, point);
    for (i64 v = r.lo; v <= r.hi; ++v) {
      point[static_cast<std::size_t>(level)] = v;
      if (level == dim_ - 1) {
        // FM is exact on the innermost level (no elimination happened),
        // but re-check to guard against rational shadows upstream.
        if (contains(point)) fn(point);
      } else {
        walk(level + 1);
      }
    }
  };
  walk(0);
}

i64 Polyhedron::count_points() const {
  i64 n = 0;
  scan([&](const VecI&) { ++n; });
  return n;
}

std::vector<IntRange> Polyhedron::bounding_box() const {
  std::vector<IntRange> out;
  out.reserve(static_cast<std::size_t>(dim_));
  for (int v = 0; v < dim_; ++v) {
    // Project away everything but v, then read its range.
    Polyhedron p = *this;
    for (int i = dim_ - 1; i >= 0; --i) {
      if (i != v) p = p.eliminate(i);
    }
    out.push_back(p.var_range(0, {}));
  }
  return out;
}

std::string Polyhedron::to_string() const {
  std::vector<std::string> lines;
  lines.reserve(cons_.size());
  for (const Constraint& c : cons_) lines.push_back(c.to_string());
  return "{ dim=" + std::to_string(dim_) + "\n  " + join(lines, "\n  ") +
         "\n}";
}

Polyhedron substitute(const Polyhedron& p, const MatQ& m, const VecQ& c) {
  CTILE_ASSERT(m.rows() == p.dim());
  CTILE_ASSERT(static_cast<int>(c.size()) == p.dim());
  int ny = m.cols();
  Polyhedron out(ny);
  for (const Constraint& old : p.constraints()) {
    // old: a.x + k >= 0 with x = M y + c  =>  (a^T M) y + (a.c + k) >= 0.
    VecQ coeffs(static_cast<std::size_t>(ny));
    for (int j = 0; j < ny; ++j) {
      Rat acc;
      for (int i = 0; i < p.dim(); ++i) {
        acc += Rat(old.coeffs[static_cast<std::size_t>(i)]) * m(i, j);
      }
      coeffs[static_cast<std::size_t>(j)] = acc;
    }
    Rat constant(old.constant);
    for (int i = 0; i < p.dim(); ++i) {
      constant += Rat(old.coeffs[static_cast<std::size_t>(i)]) *
                  c[static_cast<std::size_t>(i)];
    }
    // Clear denominators (multiplying an inequality by a positive integer
    // preserves it).
    i64 l = 1;
    for (const Rat& r : coeffs) l = lcm_i64(l, r.den());
    l = lcm_i64(l, constant.den());
    Constraint nc;
    nc.coeffs.resize(static_cast<std::size_t>(ny));
    for (int j = 0; j < ny; ++j) {
      nc.coeffs[static_cast<std::size_t>(j)] =
          (coeffs[static_cast<std::size_t>(j)] * Rat(l)).as_int();
    }
    nc.constant = (constant * Rat(l)).as_int();
    out.add(std::move(nc));
  }
  return out;
}

}  // namespace ctile
