// ctile_pland: the plan-compiler-as-a-service batch/server driver.
//
// Reads a stream of JSON tiling requests (newline-delimited objects, a
// concatenated object stream, or one JSON array), answers each from the
// content-addressed PlanCache, and prints one JSON response per request
// followed by a summary object with the cache hit rate, p50/p95/p99
// plan-acquisition latency, and the per-phase compile-time breakdown of
// every cold lowering.  Misses lower the plan, run the ctile-verify
// rules V1..V8 over the lowered artifacts, and cache only proven plans;
// hits reuse the memoized verdict with the plan — this is ROADMAP item
// 3's "many users submit nests" amortization story.
//
//   $ { echo '{"id": "a", "app": "sor", "flavour": "rect"}';
//       echo '{"id": "b", "app": "sor", "flavour": "rect"}'; } |
//     ctile_pland --stdin
//
// Request fields:
//   app      "sor" | "jacobi" | "adi" | "heat"          (required)
//   flavour  "rect" | "nonrect" ("nr1"|"nr2"|"nr3" for adi; default rect)
//   sizes    problem sizes   (app-specific; paper defaults, see below)
//   factors  tile factors    (x y z; x y for heat; paper defaults)
//   m        mapping-dimension override (default: the app's paper value)
//   mode     "lower" (default) | "autotune" | "shape"
//   id       echoed in the response (default "req-<index>")
//   candidates  autotune/shape: chain-factor candidate list
//
// Shape-mode fields (the tile-SHAPE autotuner, DESIGN.md §15): the
// search enumerates cone-surface candidate matrices, prunes against the
// per-kernel communication lower bound, lowers survivors through the
// shared PlanCache and scores them with the event-backend DES (or the
// analytic model).  Scores are memoized across requests in the service's
// ScoreMemo.  Env knobs: CTILE_SHAPE_THREADS, CTILE_SHAPE_BUDGET.
//   scorer        "event" (default) | "analytic"
//   mesh_extent   target mesh extent per dimension (default 4 — the
//                 paper's 4x4 mesh, fitted per candidate)
//   prune         bound-based pruning (default true)
//   budget        candidate budget (default $CTILE_SHAPE_BUDGET / 512)
//   search_threads  evaluation threads (default $CTILE_SHAPE_THREADS)
//   extras        include the app's rectangular family (default true)
//
// Flags: --requests=FILE (or positional FILE), --stdin, --threads=N,
// --repeat=K (process the stream K times — the steady-state warm
// workload), --no-verify, --quiet (summary only), --json=PATH (write the
// summary as a JsonReport for CI).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "cluster/autotune.hpp"
#include "cluster/shape_search.hpp"
#include "runtime/plan_cache.hpp"
#include "support/json.hpp"
#include "verify/plan_model.hpp"
#include "verify/verifier.hpp"

using namespace ctile;

namespace {

using Clock = std::chrono::steady_clock;

void usage() {
  std::fprintf(
      stderr,
      "usage: ctile_pland [--stdin | --requests=FILE | FILE]\n"
      "                   [--threads=N] [--repeat=K] [--no-verify]\n"
      "                   [--quiet] [--json=PATH]\n"
      "\n"
      "Serves a stream of JSON tiling requests from the content-addressed\n"
      "PlanCache; prints one JSON response per request plus a summary with\n"
      "hit rate, p50/p95/p99 latency and the compile-phase breakdown.\n");
}

/// One parsed request: the (app, H) pair plus autotune inputs.
struct Request {
  std::string id;
  std::string mode;  // "lower" | "autotune"
  AppInstance app;
  MatQ h;
  int force_m = -1;
  // Autotune inputs (mode == "autotune" or "shape").
  std::function<MatQ(i64)> tiling_for;
  std::function<MatQ(i64)> rect_for;  ///< the app's rectangular family
  std::vector<i64> candidates;
  i64 chain_extent = 0;
  VecI orig_lo;
  VecI orig_hi;
  MatI skew;
  // Shape-search inputs (mode == "shape").
  int arity = 1;
  i64 mesh_extent = 4;
  bool prune = true;
  bool extras = true;
  int budget = 0;
  int search_threads = 0;
  ShapeScorer scorer = ShapeScorer::kEventDes;
};

i64 size_at(const std::vector<json::ValuePtr>& xs, std::size_t i, i64 def) {
  return i < xs.size() ? xs[i]->as_i64() : def;
}

/// Materialize the app + tiling of one request, with the same paper
/// defaults as the ctile_verify CLI.
Request build_request(const json::Value& v, std::size_t index) {
  Request req;
  req.id = v.get_string_or("id", "req-" + std::to_string(index));
  req.mode = v.get_string_or("mode", "lower");
  if (req.mode != "lower" && req.mode != "autotune" && req.mode != "shape") {
    throw Error("unknown mode \"" + req.mode + "\"");
  }
  const std::string app = v.get("app").as_string();
  const std::string flavour = v.get_string_or("flavour", "rect");
  std::vector<json::ValuePtr> sizes;
  if (v.has("sizes")) sizes = v.get("sizes").as_array();
  std::vector<json::ValuePtr> factors;
  if (v.has("factors")) factors = v.get("factors").as_array();

  if (app == "sor") {
    const i64 m = size_at(sizes, 0, 6), n = size_at(sizes, 1, 9);
    const i64 x = size_at(factors, 0, 2), y = size_at(factors, 1, 3),
              z = size_at(factors, 2, 4);
    req.app = make_sor(m, n);
    auto family = [x, y, rect = flavour == "rect"](i64 zz) {
      return rect ? sor_rect_h(x, y, zz) : sor_nonrect_h(x, y, zz);
    };
    req.h = family(z);
    req.tiling_for = family;
    req.rect_for = [x, y](i64 zz) { return sor_rect_h(x, y, zz); };
    req.force_m = 2;
    req.chain_extent = 2 * m + n;  // skewed chain dim j+2t spans this
    req.orig_lo = {1, 1, 1};
    req.orig_hi = {m, n, n};
    req.skew = sor_skew_matrix();
  } else if (app == "jacobi") {
    const i64 t = size_at(sizes, 0, 4), ij = size_at(sizes, 1, 8);
    const i64 x = size_at(factors, 0, 2), y = size_at(factors, 1, 4),
              z = size_at(factors, 2, 3);
    req.app = make_jacobi(t, ij, ij);
    auto family = [y, z, rect = flavour == "rect"](i64 xx) {
      return rect ? jacobi_rect_h(xx, y, z) : jacobi_nonrect_h(xx, y, z);
    };
    req.h = family(x);
    req.tiling_for = family;
    req.rect_for = [y, z](i64 xx) { return jacobi_rect_h(xx, y, z); };
    req.force_m = 0;
    req.chain_extent = t;
    req.orig_lo = {1, 1, 1};
    req.orig_hi = {t, ij, ij};
    req.skew = jacobi_skew_matrix();
  } else if (app == "adi") {
    const i64 t = size_at(sizes, 0, 4), n = size_at(sizes, 1, 6);
    const i64 x = size_at(factors, 0, 2), y = size_at(factors, 1, 3),
              z = size_at(factors, 2, 3);
    req.app = make_adi(t, n);
    auto family = [y, z, flavour](i64 xx) {
      if (flavour == "rect") return adi_rect_h(xx, y, z);
      if (flavour == "nr1") return adi_nr1_h(xx, y, z);
      if (flavour == "nr2") return adi_nr2_h(xx, y, z);
      return adi_nr3_h(xx, y, z);
    };
    req.h = family(x);
    req.tiling_for = family;
    req.rect_for = [y, z](i64 xx) { return adi_rect_h(xx, y, z); };
    req.force_m = 0;
    req.chain_extent = t;
    req.orig_lo = {1, 1, 1};
    req.orig_hi = {t, n, n};
    req.skew = MatI::identity(3);
    req.arity = 2;
  } else if (app == "heat") {
    const i64 t = size_at(sizes, 0, 8), n = size_at(sizes, 1, 12);
    const i64 x = size_at(factors, 0, 2), y = size_at(factors, 1, 3);
    req.app = make_heat(t, n);
    auto family = [y, rect = flavour == "rect"](i64 xx) {
      return rect ? heat_rect_h(xx, y) : heat_nonrect_h(xx, y);
    };
    req.h = family(x);
    req.tiling_for = family;
    req.rect_for = [y](i64 xx) { return heat_rect_h(xx, y); };
    req.force_m = 0;
    req.chain_extent = t;
    req.orig_lo = {1, 1};
    req.orig_hi = {t, n};
    req.skew = heat_skew_matrix();
  } else {
    throw Error("unknown app \"" + app + "\"");
  }

  const i64 m_override = v.get_i64_or("m", -2);
  if (m_override != -2) req.force_m = static_cast<int>(m_override);
  if (v.has("candidates")) {
    for (const auto& c : v.get("candidates").as_array()) {
      req.candidates.push_back(c->as_i64());
    }
  }
  if (req.mode == "shape") {
    const std::string scorer = v.get_string_or("scorer", "event");
    if (scorer == "event") {
      req.scorer = ShapeScorer::kEventDes;
    } else if (scorer == "analytic") {
      req.scorer = ShapeScorer::kAnalytic;
    } else {
      throw Error("unknown scorer \"" + scorer + "\"");
    }
    req.mesh_extent = v.get_i64_or("mesh_extent", 4);
    req.prune = v.get_bool_or("prune", true);
    req.extras = v.get_bool_or("extras", true);
    req.budget = static_cast<int>(v.get_i64_or("budget", 0));
    req.search_threads =
        static_cast<int>(v.get_i64_or("search_threads", 0));
  }
  return req;
}

struct Response {
  std::string body;        ///< rendered JSON object
  double latency_s = 0.0;  ///< wall time to answer
  bool ok = false;
};

/// Shared service state: the cache, the cross-request shape-score memo,
/// and the verify-on-miss policy.
struct Service {
  PlanCache cache;
  ScoreMemo shape_memo;
  bool verify = true;
};

Response serve_lower(Service& svc, const Request& req) {
  bench::JsonArray out;
  out.begin_item();
  out.field("id", req.id);
  out.field("mode", "lower");
  Response resp;
  LoweringKnobs knobs;
  knobs.force_m = req.force_m;
  const PlanKey key = make_plan_key(req.app.nest, req.h,
                                    CompiledPlan::Kind::kParallel, knobs);
  const auto start = Clock::now();
  bool was_hit = false;
  std::shared_ptr<const CompiledPlan> plan = svc.cache.get_or_lower(
      key,
      [&] {
        auto p = CompiledPlan::compile_parallel(req.app.nest, req.h, knobs);
        if (svc.verify) {
          // Cold miss: prove the lowering (rules V1..V8) before caching.
          // A failed proof throws, so an unproven plan is never served.
          verify::PlanModel model = verify::snapshot_plan(
              p->tiled(), p->mapping(), p->comm_plan(), p->window_layouts(),
              &p->classifier());
          const verify::VerifyReport report = verify::verify_plan(model);
          if (!report.empty()) {
            throw LegalityError("plan verification failed:\n" +
                                report.to_string());
          }
        }
        return p;
      },
      &was_hit);
  resp.latency_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.field("plan", key.hex());
  out.field("hit", was_hit);
  out.field("verified", svc.verify);
  out.field("latency_s", resp.latency_s);
  out.field("procs", static_cast<i64>(plan->mapping().num_procs()));
  out.field("chain_length", plan->mapping().chain_length());
  out.field("tiles", plan->census().total());
  if (!was_hit) {
    const PlanPhaseTimes& ph = plan->phase_times();
    out.field("lower_s", ph.total_s);
    out.field("census_s", ph.census_s);
    out.field("mapping_s", ph.mapping_s);
    out.field("comm_plan_s", ph.comm_plan_s);
    out.field("locals_s", ph.locals_s);
  }
  resp.body = out.item_to_string();
  resp.ok = true;
  return resp;
}

Response serve_autotune(Service& svc, const Request& req) {
  bench::JsonArray out;
  out.begin_item();
  out.field("id", req.id);
  out.field("mode", "autotune");
  Response resp;
  AutotuneRequest areq;
  areq.tiling_for = req.tiling_for;
  areq.candidates = req.candidates;
  areq.chain_extent = req.chain_extent;
  areq.force_m = req.force_m;
  areq.arity = 1;
  areq.orig_lo = req.orig_lo;
  areq.orig_hi = req.orig_hi;
  areq.skew = req.skew;
  areq.cache = &svc.cache;  // candidate lowerings share the service cache
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  const auto start = Clock::now();
  const AutotuneResult result =
      autotune_tile_size(req.app.nest, areq, machine);
  resp.latency_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.field("best_factor", result.best_factor);
  out.field("best_makespan_s", result.best.makespan);
  out.field("best_speedup", result.best.speedup);
  out.field("evaluated", static_cast<i64>(result.evaluated.size()));
  out.field("cache_hits", result.cache_hits);
  out.field("cache_misses", result.cache_misses);
  out.field("latency_s", resp.latency_s);
  resp.body = out.item_to_string();
  resp.ok = true;
  return resp;
}

/// Render a rational matrix on one line for a JSON string field.
std::string h_to_line(const MatQ& h) {
  std::string s = h.to_string();
  for (char& c : s) {
    if (c == '\n') c = ' ';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

std::string dir_to_string(const VecI& d) {
  std::string s = "(";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(d[i]);
  }
  return s + ")";
}

Response serve_shape(Service& svc, const Request& req) {
  bench::JsonArray out;
  out.begin_item();
  out.field("id", req.id);
  out.field("mode", "shape");
  Response resp;
  ShapeSearchRequest sreq;
  sreq.force_m = req.force_m;
  sreq.arity = req.arity;
  sreq.mesh_extent = req.mesh_extent;
  sreq.chain_factors = req.candidates;
  if (sreq.chain_factors.empty()) {
    for (i64 c : {2, 4, 8, 16}) {
      if (req.chain_extent <= 0 || c <= req.chain_extent) {
        sreq.chain_factors.push_back(c);
      }
    }
  }
  if (req.extras && req.rect_for) {
    for (i64 c : sreq.chain_factors) sreq.extra.push_back(req.rect_for(c));
  }
  sreq.prune = req.prune;
  sreq.budget = req.budget;
  sreq.threads = req.search_threads;
  sreq.scorer = req.scorer;
  sreq.orig_lo = req.orig_lo;
  sreq.orig_hi = req.orig_hi;
  sreq.skew = req.skew;
  sreq.cache = &svc.cache;
  sreq.memo = &svc.shape_memo;
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  const auto start = Clock::now();
  const ShapeSearchResult result =
      autotune_tile_shape(req.app.nest, sreq, machine);
  resp.latency_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  const ShapeScore& best = result.best();
  out.field("best_plan", best.plan_id);
  out.field("best_h", h_to_line(best.h));
  out.field("best_chain_dir", dir_to_string(best.chain_dir));
  out.field("best_origin", best.origin);
  out.field("best_score_s", best.score_s);
  out.field("best_analytic_s", best.analytic.makespan);
  if (req.scorer == ShapeScorer::kEventDes) {
    out.field("best_des_s", best.des_makespan_s);
  }
  out.field("best_procs", static_cast<i64>(best.bound.num_procs));
  out.field("measured_bytes", best.analytic.bytes);
  out.field("bytes_lb", best.bound.bytes_lb);
  if (best.bound.bytes_lb > 0) {
    out.field("volume_ratio",
              static_cast<double>(best.analytic.bytes) /
                  static_cast<double>(best.bound.bytes_lb));
  }
  out.field("candidates", result.candidates);
  out.field("duplicates", result.duplicates);
  out.field("truncated", result.truncated);
  out.field("invalid", result.invalid);
  out.field("pruned", result.pruned);
  out.field("evaluated", result.evaluated);
  out.field("prune_rate", result.prune_rate());
  out.field("cache_hits", result.cache_hits);
  out.field("cache_misses", result.cache_misses);
  out.field("memo_hits", result.memo_hits);
  out.field("gen_s", result.gen_s);
  out.field("bound_s", result.bound_s);
  out.field("eval_s", result.eval_s);
  out.field("search_s", result.total_s);
  out.field("latency_s", resp.latency_s);
  resp.body = out.item_to_string();
  resp.ok = true;
  return resp;
}

Response serve(Service& svc, const json::Value& v, std::size_t index) {
  try {
    const Request req = build_request(v, index);
    if (req.mode == "shape") return serve_shape(svc, req);
    return req.mode == "autotune" ? serve_autotune(svc, req)
                                  : serve_lower(svc, req);
  } catch (const Error& e) {
    bench::JsonArray out;
    out.begin_item();
    out.field("id", std::string("req-") + std::to_string(index));
    out.field("error", std::string(e.what()));
    Response resp;
    resp.body = out.item_to_string();
    resp.ok = false;
    return resp;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool from_stdin = false;
  bool quiet = false;
  std::string requests_path;
  std::string json_path;
  int threads = 1;
  int repeat = 1;
  Service svc;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdin") {
      from_stdin = true;
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests_path = arg.substr(11);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else if (arg == "--no-verify") {
      svc.verify = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && requests_path.empty()) {
      requests_path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (threads < 1 || repeat < 1) {
    usage();
    return 2;
  }
  if (from_stdin == !requests_path.empty()) {
    std::fprintf(stderr,
                 "ctile_pland: need exactly one of --stdin / a request "
                 "file\n");
    usage();
    return 2;
  }

  // ---- Read and parse the request stream.
  std::string text;
  if (from_stdin) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream f(requests_path);
    if (!f) {
      std::fprintf(stderr, "ctile_pland: cannot read %s\n",
                   requests_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  }
  std::vector<json::ValuePtr> requests;
  try {
    std::size_t pos = 0;
    while (true) {
      json::ValuePtr v = json::parse_next(text, &pos);
      if (v == nullptr) break;
      if (v->type() == json::Type::kArray) {
        for (const auto& e : v->as_array()) requests.push_back(e);
      } else {
        requests.push_back(v);
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "ctile_pland: %s\n", e.what());
    return 2;
  }
  if (requests.empty()) {
    std::fprintf(stderr, "ctile_pland: empty request stream\n");
    return 2;
  }

  // ---- Serve.  With --threads=N, requests fan out over a worker pool
  // (the PlanCache is the concurrency point: same-key requests lower
  // once, distinct keys lower in parallel); responses keep request
  // order.  --repeat=K replays the stream K times, the steady-state
  // warm-cache workload.
  const std::size_t total = requests.size() * static_cast<std::size_t>(repeat);
  std::vector<Response> responses(total);
  const auto serve_index = [&](std::size_t i) {
    responses[i] = serve(svc, *requests[i % requests.size()], i);
  };
  if (threads == 1) {
    for (std::size_t i = 0; i < total; ++i) serve_index(i);
  } else {
    std::mutex mu;
    std::size_t next = 0;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        while (true) {
          std::size_t i;
          {
            std::lock_guard<std::mutex> lock(mu);
            if (next >= total) return;
            i = next++;
          }
          serve_index(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  bool all_ok = true;
  std::vector<double> latencies;
  latencies.reserve(total);
  for (const Response& r : responses) {
    if (!quiet) std::printf("%s\n", r.body.c_str());
    if (r.ok) {
      latencies.push_back(r.latency_s);
    } else {
      all_ok = false;
    }
  }

  // ---- Summary: hit rate, latency percentiles, compile-phase totals.
  const PlanCache::Stats stats = svc.cache.stats();
  bench::JsonArray summary;
  summary.begin_item();
  summary.field("summary", true);
  summary.field("requests", static_cast<i64>(total));
  summary.field("answered", static_cast<i64>(latencies.size()));
  summary.field("plans_cached", static_cast<i64>(svc.cache.size()));
  summary.field("hits", stats.hits);
  summary.field("misses", stats.misses);
  summary.field("hit_rate", stats.hit_rate());
  if (!latencies.empty()) {
    const bench::Percentiles pct = bench::percentiles_of(latencies);
    summary.field("latency_p50_s", pct.p50);
    summary.field("latency_p95_s", pct.p95);
    summary.field("latency_p99_s", pct.p99);
  }
  summary.field("lowering_s", stats.lowering_s);
  summary.field("phase_tile_space_s", stats.phase_total.tile_space_s);
  summary.field("phase_census_s", stats.phase_total.census_s);
  summary.field("phase_mapping_s", stats.phase_total.mapping_s);
  summary.field("phase_lds_s", stats.phase_total.lds_s);
  summary.field("phase_comm_plan_s", stats.phase_total.comm_plan_s);
  summary.field("phase_classifier_s", stats.phase_total.classifier_s);
  summary.field("phase_band_s", stats.phase_total.band_s);
  summary.field("phase_locals_s", stats.phase_total.locals_s);
  std::printf("%s\n", summary.item_to_string().c_str());

  if (!json_path.empty()) {
    bench::JsonReport report("plan_service");
    report.begin_row();
    report.field("requests", static_cast<i64>(total));
    report.field("hits", stats.hits);
    report.field("misses", stats.misses);
    report.field("hit_rate", stats.hit_rate());
    if (!latencies.empty()) {
      const bench::Percentiles pct = bench::percentiles_of(latencies);
      report.field("latency_p50_s", pct.p50);
      report.field("latency_p95_s", pct.p95);
      report.field("latency_p99_s", pct.p99);
    }
    report.field("lowering_s", stats.lowering_s);
    if (!report.write(json_path)) return 1;
  }
  return all_ok ? 0 : 1;
}
