// ctile_verify: the command-line driver of the static plan verifier.
//
//   $ ./ctile_verify sor rect                 # prove the default SOR plan
//   $ ./ctile_verify jacobi nonrect 10 18 2 4 3
//   $ ./ctile_verify adi nr2 --json           # machine-readable findings
//   $ ./ctile_verify sor rect --mutate=v2     # demo: seed an illegal plan
//
// Lowers the chosen application + tiling exactly as the parallel
// executor would (CompiledPlan::compile_parallel: census, mapping,
// per-window LDS layouts, comm plan, interior classifier, band split,
// row plans), snapshots the plan with its concurrency facts, and runs
// rules V1..V8 over it.  Exit status: 0 when the plan is proven safe,
// 1 when findings exist, 2 on usage errors.
//
// --mutate=v1..v8 seeds one representative illegal perturbation into the
// lowered plan (negated dependence column, shrunken halo, dropped
// message, unordered schedule entry, boundary tile forced interior,
// unpack moved before the wait, transit buffer released while in use,
// corrupted SIMD alias claim) so the matching rule's diagnostic can be
// inspected; the same mutations are what
// tests/verify_mutation_test.cpp asserts on.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/kernels.hpp"
#include "support/error.hpp"
#include "verify/verifier.hpp"

using namespace ctile;
using namespace ctile::verify;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: ctile_verify [--json] [--m=K] [--mutate=v1|...|v8]\n"
      "                    sor|jacobi|adi|heat rect|nonrect|nr1|nr2|nr3 "
      "[sizes... tile factors...]\n"
      "\n"
      "Proves a lowered tiling plan safe (rules V1..V8) or reports the\n"
      "violations with concrete witnesses.  Sizes/factors default to the\n"
      "paper's example configurations (Figs. 6, 8, 10).\n");
}

/// Seed one representative illegal perturbation into the lowered plan.
bool apply_mutation(PlanModel& model, const std::string& which) {
  const int n = model.n;
  if (which == "v1") {
    // Negate a dependence column: H D gains a negative entry.
    if (model.D.cols() == 0) return false;
    model.D.negate_col(0);
    return true;
  }
  if (which == "v2") {
    // Shrink the halo by one slot in a dimension that needs it.
    for (auto& [len, lds] : model.lds) {
      (void)len;
      for (int k = 0; k < n; ++k) {
        if (model.dep_max[static_cast<std::size_t>(k)] > 0) {
          lds.off[static_cast<std::size_t>(k)] -= 1;
          return true;
        }
      }
    }
    return false;
  }
  if (which == "v3") {
    // Drop one cross-processor message from the schedule.
    for (std::size_t i = 0; i < model.tile_deps.size(); ++i) {
      if (model.tile_deps[i].dir >= 0) {
        model.tile_deps.erase(model.tile_deps.begin() +
                              static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  if (which == "v4") {
    // Append a schedule entry Pi does not strictly order.
    if (n < 2 || model.directions.empty()) return false;
    TileDepModel bad;
    bad.ds.assign(static_cast<std::size_t>(n), 0);
    bad.ds[0] = 1;
    bad.ds[1] = -1;  // Pi . ds = 0
    bad.dm = bad.ds;
    bad.dm.erase(bad.dm.begin() + model.m);
    bad.dir = 0;
    model.tile_deps.push_back(std::move(bad));
    return true;
  }
  if (which == "v5") {
    // Force a boundary tile interior.
    for (const VecI& js : model.valid_tiles) {
      bool already = false;
      for (const VecI& t : model.interior_tiles) {
        if (t == js) {
          already = true;
          break;
        }
      }
      if (!already) {
        model.interior_tiles.push_back(js);
        return true;
      }
    }
    return false;
  }
  if (which == "v6") {
    // Unpack the pre-posted irecv's payload at post time instead of
    // after the wait: the message happens-before edge disappears and
    // every halo unpack races its producer's pack+isend.
    if (!model.has_concurrency_facts) return false;
    model.schedule.unpack_at_wait = false;
    return true;
  }
  if (which == "v7") {
    // Release the transit buffer before the unpack completes: the pool
    // can recycle storage an in-flight message still owns.
    if (!model.has_concurrency_facts) return false;
    model.pool.transit_released_after_unpack = false;
    return true;
  }
  if (which == "v8") {
    // Corrupt one SIMD alias-distance claim: the vectorized sweep would
    // mis-split the recurrence.
    for (auto& [len, lds] : model.lds) {
      (void)len;
      if (!lds.alias.empty()) {
        lds.alias[0] += 1;
        return true;
      }
    }
    return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int force_m_flag = -2;  // -2: use the app default
  std::string mutate;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[arg], "--m=", 4) == 0) {
      force_m_flag = std::atoi(argv[arg] + 4);
    } else if (std::strncmp(argv[arg], "--mutate=", 9) == 0) {
      mutate = argv[arg] + 9;
    } else {
      usage();
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) {
    usage();
    return 2;
  }
  const std::string name = argv[arg++];
  const std::string flavour = argv[arg++];
  auto next = [&](i64 def) {
    return arg < argc ? std::atoll(argv[arg++]) : def;
  };

  try {
    AppInstance app;
    MatQ h;
    int force_m = -1;
    if (name == "sor") {
      const i64 m = next(6), n = next(9), x = next(2), y = next(3),
                z = next(4);
      app = make_sor(m, n);
      h = flavour == "rect" ? sor_rect_h(x, y, z) : sor_nonrect_h(x, y, z);
      force_m = 2;
    } else if (name == "jacobi") {
      const i64 t = next(4), ij = next(8), x = next(2), y = next(4),
                z = next(3);
      app = make_jacobi(t, ij, ij);
      h = flavour == "rect" ? jacobi_rect_h(x, y, z)
                            : jacobi_nonrect_h(x, y, z);
      force_m = 0;
    } else if (name == "adi") {
      const i64 t = next(4), n = next(6), x = next(2), y = next(3),
                z = next(3);
      app = make_adi(t, n);
      if (flavour == "rect") {
        h = adi_rect_h(x, y, z);
      } else if (flavour == "nr1") {
        h = adi_nr1_h(x, y, z);
      } else if (flavour == "nr2") {
        h = adi_nr2_h(x, y, z);
      } else {
        h = adi_nr3_h(x, y, z);
      }
      force_m = 0;
    } else if (name == "heat") {
      const i64 t = next(8), n = next(12), x = next(2), y = next(3);
      app = make_heat(t, n);
      h = flavour == "rect" ? heat_rect_h(x, y) : heat_nonrect_h(x, y);
      force_m = 0;
    } else {
      usage();
      return 2;
    }
    if (force_m_flag != -2) force_m = force_m_flag;

    const TiledNest tiled(app.nest, TilingTransform(h));
    PlanModel model = lower_and_snapshot(tiled, force_m);
    if (!mutate.empty() && !apply_mutation(model, mutate)) {
      std::fprintf(stderr, "ctile_verify: mutation '%s' not applicable\n",
                   mutate.c_str());
      return 2;
    }
    const VerifyReport report = verify_plan(model);
    if (json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::printf("%s", report.to_string().c_str());
    }
    return report.empty() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "ctile_verify: %s\n", e.what());
    return 1;
  }
}
